"""Incremental detect-series must be bit-identical to full recomputation.

The invariant behind ``detect_series(..., incremental=True)``: at every
date, detection over the delta-maintained index — with the columnar
state and persistent Step-3 counters *patched*, never rebuilt — equals a
from-scratch run on that date's snapshot, for every engine.  Hypothesis
drives randomized multi-date churn scenarios (domains appearing,
disappearing, flipping dual-stack, renumbering, moving prefixes) through
a small series shim; the properties then compare the complete observable
output per date, via the shared ``as_mapping`` agreement definition.

Also here: the white-box guarantees the invariant rests on — the
counter retract/add arithmetic, stale-cache invalidation through the
index version protocol, the annotator-signature rebuild gate, the
serve-series recompile skip, and CLI byte-identity.
"""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import as_mapping

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.domainsets import build_index
from repro.core.kernels import available_kernel_names, use_kernel
from repro.core.parallel import ShardedSubstrate
from repro.core.substrate import ColumnarSubstrate, get_substrate

# The delta patch path runs on whichever kernel is active, so the
# incremental==full properties carry a kernel axis: the sorted-array
# merge-subtract/add (numpy) and the Counter retract loop (python) must
# both keep the persistent Step-3 counter bit-exact.
KERNEL_NAMES = available_kernel_names()
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

# Public, non-reserved pools (the annotator discards reserved space).
V4_POOL = [
    Prefix.from_address(IPV4, (20 << 24) | (i << 8), 24) for i in range(10)
]
V6_POOL = [
    Prefix.from_address(IPV6, (0x2400_00DB << 96) | (i << 80), 48)
    for i in range(10)
]

BASE_DATE = datetime.date(2024, 9, 1)


def make_annotator(extra_prefix: Prefix | None = None) -> PrefixAnnotator:
    rib = Rib()
    for position, prefix in enumerate(V4_POOL + V6_POOL):
        rib.announce(prefix, 65000 + position)
    if extra_prefix is not None:
        rib.announce(extra_prefix, 64999)
    return PrefixAnnotator(rib, missing_fraction=0.0)


class SeriesShim:
    """Duck-typed stand-in for :class:`repro.synth.universe.Universe` —
    the pipeline only calls ``snapshot_at`` and ``annotator_at``."""

    def __init__(self, snapshots, annotator_for_date=None):
        self._snapshots = {s.date: s for s in snapshots}
        self._annotator = make_annotator()
        self._annotator_for_date = annotator_for_date

    def snapshot_at(self, date):
        return self._snapshots[date]

    def annotator_at(self, date):
        if self._annotator_for_date is not None:
            return self._annotator_for_date(date)
        return self._annotator


def snapshot_from_table(date, table) -> DnsSnapshot:
    """A snapshot from ``{domain: (v4 address ids, v6 address ids)}``;
    an address id is ``(pool index, offset)``."""
    return DnsSnapshot(
        date,
        (
            DomainObservation(
                domain,
                tuple(
                    V4_POOL[pool].first_address + offset
                    for pool, offset in sorted(v4_ids)
                ),
                tuple(
                    V6_POOL[pool].first_address + offset
                    for pool, offset in sorted(v6_ids)
                ),
            )
            for domain, (v4_ids, v6_ids) in table.items()
        ),
    )


@st.composite
def churn_series(draw, max_dates: int = 4):
    """A list of per-date observation tables with correlated churn.

    Date 0 is drawn in full; every later date copies the previous table
    and mutates a random subset of slots — remove, add, renumber within
    a prefix, move prefixes, or flip one family empty (dual-stack flip).
    """
    address_id = st.tuples(
        st.integers(0, len(V4_POOL) - 1), st.integers(1, 250)
    )
    families = st.tuples(
        st.sets(address_id, min_size=0, max_size=3),
        st.sets(address_id, min_size=0, max_size=3),
    )
    n_domains = draw(st.integers(2, 14))
    labels = [f"d{i}.example" for i in range(n_domains)]
    table = {
        label: draw(families) for label in draw(st.sets(st.sampled_from(labels), min_size=1))
    }
    tables = [table]
    for _ in range(draw(st.integers(1, max_dates - 1))):
        table = dict(table)
        for label in labels:
            action = draw(
                st.sampled_from(("keep", "keep", "keep", "set", "drop"))
            )
            if action == "drop":
                table.pop(label, None)
            elif action == "set":
                table[label] = draw(families)
        tables.append(table)
    return tables


def run_both(tables, engine_factory):
    dates = [BASE_DATE + datetime.timedelta(days=i) for i in range(len(tables))]
    shim = SeriesShim(
        [snapshot_from_table(date, table) for date, table in zip(dates, tables)]
    )
    from repro.analysis.pipeline import detect_series

    full = detect_series(shim, dates, substrate=engine_factory())
    incremental = detect_series(
        shim, dates, substrate=engine_factory(), incremental=True
    )
    return dates, full, incremental


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@given(tables=churn_series())
@settings(max_examples=25)
def test_incremental_equals_full_columnar(kernel, tables):
    """Columnar engine: per-date bit-identical output under churn, on
    every kernel's delta merge."""
    with use_kernel(kernel):
        dates, full, incremental = run_both(tables, ColumnarSubstrate)
    assert [d for d, _ in incremental] == dates
    for (_, siblings_full), (_, siblings_incremental) in zip(full, incremental):
        assert as_mapping(siblings_full) == as_mapping(siblings_incremental)


@given(tables=churn_series())
@settings(max_examples=8)
def test_incremental_equals_reference_oracle(tables):
    """Incremental columnar output equals the paper-literal reference
    engine run from scratch on every date — the strongest oracle."""
    dates, _, incremental = run_both(tables, ColumnarSubstrate)
    shim = SeriesShim(
        [snapshot_from_table(date, table) for date, table in zip(dates, tables)]
    )
    reference = get_substrate("reference")
    for date, siblings in incremental:
        fresh = reference.select(
            build_index(shim.snapshot_at(date), shim.annotator_at(date))
        )
        assert as_mapping(siblings) == as_mapping(fresh)


@given(tables=churn_series(max_dates=3))
@settings(max_examples=3)
def test_incremental_equals_full_sharded(tables):
    """Sharded engine with real worker processes and zero fallback
    threshold: the delta retract/add path routes through the same shard
    partition and still matches the full run bit for bit."""
    dates, full, incremental = run_both(
        tables, lambda: ShardedSubstrate(workers=2, min_pair_rows=0)
    )
    for (_, siblings_full), (_, siblings_incremental) in zip(full, incremental):
        assert as_mapping(siblings_full) == as_mapping(siblings_incremental)


# ---------------------------------------------------------------------------
# White-box: the persistent counter really is patched, not rebuilt
# ---------------------------------------------------------------------------


def _two_date_tables():
    return [
        {
            "a.example": ({(0, 1)}, {(0, 1)}),
            "b.example": ({(0, 2), (1, 9)}, {(1, 7)}),
            "c.example": ({(2, 3)}, {(2, 3)}),
        },
        {
            "a.example": ({(0, 1)}, {(0, 1)}),          # unchanged
            "b.example": ({(3, 2)}, {(1, 7), (3, 8)}),  # moved prefixes
            "d.example": ({(4, 4)}, {(4, 4)}),          # appeared
        },  # c.example disappeared
    ]


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_counter_is_patched_in_place_and_exact(kernel):
    """The persistent counter is patched bit-exactly by the active
    kernel's retract/add merge — including the retraction-to-zero path:
    c.example disappears, so its (pool 2, pool 2) pair count falls to
    exactly zero and the key must be *eliminated*, not left at zero."""
    tables = _two_date_tables()
    annotator = make_annotator()
    s0 = snapshot_from_table(BASE_DATE, tables[0])
    s1 = snapshot_from_table(BASE_DATE + datetime.timedelta(days=1), tables[1])
    def in_prefix_space(state, counts):
        return {
            (
                state.v4_prefixes[key >> 32],
                state.v6_prefixes[key & 0xFFFFFFFF],
            ): count
            for key, count in counts.items()
        }

    with use_kernel(kernel):
        engine = ColumnarSubstrate()
        index = build_index(s0, annotator)
        first = engine.select(index)
        state_before = engine.prepare(index)
        assert state_before.counts is not None  # persisted by select
        # The pair that will be retracted to zero is present on date 0.
        assert (
            in_prefix_space(state_before, state_before.counts)[
                (V4_POOL[2], V6_POOL[2])
            ]
            == 1
        )
        index.apply_delta(s0.delta_to(s1), annotator)
        second = engine.select(index)
        state_after = engine.prepare(index)
        # Same state object — patched, not rebuilt — and the patched
        # counter equals a from-scratch accumulation on a rebuilt state,
        # compared in prefix space (row numbering may legitimately
        # differ).
        assert state_after is state_before
        fresh_engine = ColumnarSubstrate()
        fresh_state = fresh_engine.prepare(build_index(s1, make_annotator()))
        fresh_counts = ColumnarSubstrate.pair_counts(fresh_state)
        patched = in_prefix_space(state_after, state_after.counts)
        assert patched == in_prefix_space(fresh_state, fresh_counts)
        # Retraction-to-zero: the disappeared domain's pair is gone from
        # the counter entirely (mapping and sorted columns agree).
        assert (V4_POOL[2], V6_POOL[2]) not in patched
        assert len(state_after.counts) == len(
            state_after.counts.sorted_columns()[0]
        )
        # And the selected outputs match the oracle on both dates.
        reference = get_substrate("reference")
        assert as_mapping(first) == as_mapping(
            reference.select(build_index(s0, make_annotator()))
        )
        assert as_mapping(second) == as_mapping(reference.select(index))


def test_stale_cache_regression_count_preserving_mutation():
    """Moving a domain between equal-sized groups preserves every count
    the structural fingerprint sees; before the version protocol this
    left the cached columnar view silently stale.  ``mark_mutated`` must
    force a rebuild."""
    annotator = make_annotator()
    table = {
        "a.example": ({(0, 1)}, {(0, 1)}),
        "b.example": ({(1, 2)}, {(1, 2)}),
    }
    snapshot = snapshot_from_table(BASE_DATE, table)
    engine = ColumnarSubstrate()
    index = build_index(snapshot, annotator)
    before = engine.select(index)
    assert (V4_POOL[0], V6_POOL[0]) in as_mapping(before)

    # Hand-edit: a.example's v4 membership moves pool 0 → pool 5.  All
    # five fingerprint counts (domains, groups per family, memberships
    # per family) are unchanged.
    index.v4_domains[V4_POOL[5]] = index.v4_domains.pop(V4_POOL[0])
    index.domain_v4_prefixes["a.example"] = {V4_POOL[5]}
    index.mark_mutated()

    after = engine.select(index)
    mapping = as_mapping(after)
    assert (V4_POOL[5], V6_POOL[0]) in mapping
    assert (V4_POOL[0], V6_POOL[0]) not in mapping
    assert as_mapping(get_substrate("reference").select(index)) == mapping


def test_unmarked_hand_edit_behind_delta_still_rebuilds():
    """A hand-edit that never called ``mark_mutated`` followed by
    ``apply_delta`` must not slip past the patch path: the patched
    state's structure disagrees with the index fingerprint, so prepare
    falls back to a rebuild — the pre-incremental safety net survives."""
    tables = _two_date_tables()
    annotator = make_annotator()
    s0 = snapshot_from_table(BASE_DATE, tables[0])
    s1 = snapshot_from_table(BASE_DATE + datetime.timedelta(days=1), tables[1])
    engine = ColumnarSubstrate()
    index = build_index(s0, annotator)
    engine.select(index)
    # Structure-changing hand-edit, no mark_mutated, on a domain the
    # delta does NOT touch (a.example is identical on both dates), so
    # the edit persists after apply_delta: a.example also joins pool 7
    # on the v4 side.
    index.v4_domains.setdefault(V4_POOL[7], set()).add("a.example")
    index.domain_v4_prefixes["a.example"] = set(
        index.domain_v4_prefixes["a.example"]
    ) | {V4_POOL[7]}
    index.apply_delta(s0.delta_to(s1), annotator)
    mapping = as_mapping(engine.select(index))
    assert mapping == as_mapping(get_substrate("reference").select(index))
    assert any(v4 == V4_POOL[7] for v4, _ in mapping)


def test_annotator_change_forces_full_rebuild_and_stays_exact():
    """A routing change between dates invalidates delta application —
    the pipeline must rebuild that date from scratch and still agree
    with the non-incremental run."""
    from repro.analysis.pipeline import detect_series

    tables = _two_date_tables() + [_two_date_tables()[0]]
    dates = [BASE_DATE + datetime.timedelta(days=i) for i in range(len(tables))]
    annotators = {
        dates[0]: make_annotator(),
        # Announce a more-specific inside pool 0 from date 1 on: every
        # address in it re-annotates, including unchanged domains'.
        dates[1]: make_annotator(V4_POOL[0].subnets(25).__next__()),
        dates[2]: make_annotator(V4_POOL[0].subnets(25).__next__()),
    }
    shim = SeriesShim(
        [snapshot_from_table(date, table) for date, table in zip(dates, tables)],
        annotator_for_date=annotators.__getitem__,
    )
    full = detect_series(shim, dates, substrate=ColumnarSubstrate())
    incremental = detect_series(
        shim, dates, substrate=ColumnarSubstrate(), incremental=True
    )
    for (_, siblings_full), (_, siblings_incremental) in zip(full, incremental):
        assert as_mapping(siblings_full) == as_mapping(siblings_incremental)


def test_serve_series_skips_recompile_for_unchanged_dates():
    from repro.analysis.pipeline import serve_series

    tables = [_two_date_tables()[0]] * 3 + [_two_date_tables()[1]]
    dates = [BASE_DATE + datetime.timedelta(days=i) for i in range(len(tables))]
    shim = SeriesShim(
        [snapshot_from_table(date, table) for date, table in zip(dates, tables)]
    )
    service = serve_series(shim, dates, incremental=True)
    # Dates 1 and 2 are identical to date 0: one publish for the first
    # three dates, one for the changed final date.
    assert service.generation == 2
    assert service.index.snapshot == dates[-1]


def test_cli_detect_series_incremental_byte_identical(tmp_path):
    """``detect-series --incremental`` produces byte-identical CSV under
    *each* kernel — and the bytes also agree *across* kernels, so the
    incremental path (including retraction-to-zero churn inside the
    series) cannot drift with the backend."""
    from repro.cli import main

    outputs = {}
    for kernel in KERNEL_NAMES:
        full_path = tmp_path / f"full-{kernel}.csv"
        incremental_path = tmp_path / f"incremental-{kernel}.csv"
        with use_kernel(kernel):
            assert main(
                [
                    "detect-series", "--scenario", "tiny",
                    "--offsets", "stability", "--format", "csv",
                    "-o", str(full_path), "--kernel", kernel,
                ]
            ) == 0
            assert main(
                [
                    "detect-series", "--scenario", "tiny",
                    "--offsets", "stability", "--format", "csv",
                    "-o", str(incremental_path), "--incremental",
                    "--kernel", kernel,
                ]
            ) == 0
        outputs[kernel] = full_path.read_bytes()
        assert outputs[kernel] == incremental_path.read_bytes()
    assert len(set(outputs.values())) == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
