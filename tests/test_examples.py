"""Every example script must run end to end (on the tiny scenario)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: (script, argv) — scripts accepting a scenario argument get "tiny";
#: quickstart also exercises the substrate-selection argument.
EXAMPLES = (
    ("quickstart.py", ["tiny", "reference"]),
    ("blocklist_transfer.py", []),
    ("cdn_analysis.py", ["tiny"]),
    ("rpki_monitor.py", []),
    ("threshold_tuning.py", []),
    ("longitudinal_study.py", []),
    ("geolocation_transfer.py", []),
    ("serving_demo.py", ["tiny"]),
)


@pytest.mark.parametrize("script,argv", EXAMPLES, ids=[s for s, _ in EXAMPLES])
def test_example_runs(script, argv, capsys, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)] + argv)
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_at_least_three_examples_exist():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()
