"""Tests for similarity metrics, including the paper's metric-choice facts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    METRICS_FROM_COUNTS,
    dice,
    dice_from_counts,
    jaccard,
    jaccard_from_counts,
    overlap_coefficient,
    overlap_from_counts,
)

sets = st.frozensets(st.integers(min_value=0, max_value=30), max_size=12)


class TestBasics:
    def test_identical_sets(self):
        a = {"x", "y"}
        assert jaccard(a, a) == 1.0
        assert dice(a, a) == 1.0
        assert overlap_coefficient(a, a) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0
        assert dice({"a"}, {"b"}) == 0.0
        assert overlap_coefficient({"a"}, {"b"}) == 0.0

    def test_half_overlap(self):
        a, b = {"x", "y"}, {"y", "z"}
        assert jaccard(a, b) == pytest.approx(1 / 3)
        assert dice(a, b) == pytest.approx(1 / 2)
        assert overlap_coefficient(a, b) == pytest.approx(1 / 2)

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0
        assert dice(set(), set()) == 0.0
        assert overlap_coefficient(set(), set()) == 0.0
        assert jaccard({"a"}, set()) == 0.0

    def test_subset_saturates_overlap_only(self):
        # The paper's reason for rejecting the overlap coefficient: a
        # subset relation forces the value to 1 regardless of similarity.
        big = set(range(100))
        small = {1}
        assert overlap_coefficient(small, big) == 1.0
        assert jaccard(small, big) == pytest.approx(0.01)
        assert dice(small, big) < 0.02

    def test_counts_variants_match(self):
        a, b = {"x", "y", "z"}, {"y", "z", "w", "v"}
        inter = len(a & b)
        assert jaccard_from_counts(inter, len(a), len(b)) == jaccard(a, b)
        assert dice_from_counts(inter, len(a), len(b)) == dice(a, b)
        assert overlap_from_counts(inter, len(a), len(b)) == overlap_coefficient(a, b)

    def test_registry(self):
        assert set(METRICS_FROM_COUNTS) == {"jaccard", "dice", "overlap"}


class TestProperties:
    @given(sets, sets)
    def test_bounds(self, a, b):
        for metric in (jaccard, dice, overlap_coefficient):
            assert 0.0 <= metric(a, b) <= 1.0

    @given(sets, sets)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert dice(a, b) == dice(b, a)
        assert overlap_coefficient(a, b) == overlap_coefficient(b, a)

    @given(sets, sets)
    def test_dice_dominates_jaccard(self, a, b):
        # Dice is "lenient to the right" (Section 3.2): it never reports
        # a lower value than Jaccard.
        assert dice(a, b) >= jaccard(a, b) - 1e-12

    @given(sets, sets)
    def test_overlap_dominates_dice(self, a, b):
        assert overlap_coefficient(a, b) >= dice(a, b) - 1e-12

    @given(sets, sets)
    def test_perfect_iff_equal_nonempty(self, a, b):
        if a or b:
            assert (jaccard(a, b) == 1.0) == (a == b and bool(a))

    @given(sets)
    def test_jaccard_dice_relation(self, a):
        # J = D / (2 - D) exactly.
        b = frozenset(x + 1 for x in a)
        d = dice(a, b)
        assert jaccard(a, b) == pytest.approx(d / (2 - d) if d else 0.0)
