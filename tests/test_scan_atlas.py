"""Tests for the port scanner, scan analysis, and vantage-point evaluation."""

import pytest

from repro.atlas.groundtruth import evaluate_coverage
from repro.atlas.probes import VantageKind, VantagePoint, generate_vantage_points
from repro.core.detection import detect_siblings
from repro.core.siblings import SiblingPair, SiblingSet
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.sets import PrefixSet
from repro.scan.analysis import (
    portscan_overlap,
    responsive_share,
    scan_heatmap,
)
from repro.scan.ports import SERVICE_PROFILES, WELL_KNOWN_PORTS, profile_ports
from repro.scan.zmap import MAX_PPS, PortScanner


def p(text):
    return Prefix.parse(text)


def addr(text):
    return Prefix.parse(text).value


class TestPorts:
    def test_fourteen_ports(self):
        assert len(WELL_KNOWN_PORTS) == 14
        assert 7547 in WELL_KNOWN_PORTS  # TR-069
        assert 443 in WELL_KNOWN_PORTS

    def test_profiles_within_scan_set(self):
        for name, ports in SERVICE_PROFILES.items():
            assert ports <= set(WELL_KNOWN_PORTS), name

    def test_unknown_profile_defaults_to_web(self):
        assert profile_ports("nonsense") == SERVICE_PROFILES["web"]


class TestScanner:
    def inventory(self):
        return {
            (IPV4, addr("5.1.0.10")): "web",
            (IPV6, addr("2600:100::10")): "web",
            (IPV4, addr("5.1.0.20")): "mail",
        }

    def test_scan_known_host(self):
        scanner = PortScanner(self.inventory(), seed=1)
        observation = scanner.scan_address(IPV4, addr("5.1.0.10"))
        # Either responsive with web ports, or (rarely) not responding.
        if observation.is_responsive:
            assert observation.responsive_ports <= {80, 443}

    def test_scan_unknown_address_silent(self):
        scanner = PortScanner(self.inventory(), seed=1)
        observation = scanner.scan_address(IPV4, addr("5.9.9.9"))
        assert not observation.is_responsive

    def test_blocklist(self):
        scanner = PortScanner(
            self.inventory(), seed=1, blocklist=PrefixSet([p("5.1.0.0/24")])
        )
        observation = scanner.scan_address(IPV4, addr("5.1.0.10"))
        assert not observation.is_responsive
        assert scanner.stats.blocked_addresses == 1

    def test_scan_inventory_stats(self):
        scanner = PortScanner(self.inventory(), seed=1)
        observations = scanner.scan_inventory()
        assert len(observations) == 3
        assert scanner.stats.probes_sent == 3 * len(WELL_KNOWN_PORTS)
        assert scanner.stats.duration_seconds > 0

    def test_rate_cap_enforced(self):
        with pytest.raises(ValueError):
            PortScanner({}, rate_pps=MAX_PPS + 1)
        with pytest.raises(ValueError):
            PortScanner({}, rate_pps=0)

    def test_exhaustive_v4_sweep(self):
        scanner = PortScanner(self.inventory(), seed=1)
        observations = scanner.scan_prefix_v4(p("5.1.0.0/28"))
        assert len(observations) == 16

    def test_sweep_guards(self):
        scanner = PortScanner(self.inventory(), seed=1)
        with pytest.raises(ValueError):
            scanner.scan_prefix_v4(p("2600:100::/48"))
        with pytest.raises(ValueError):
            scanner.scan_prefix_v4(p("5.0.0.0/8"))

    def test_deterministic(self):
        a = PortScanner(self.inventory(), seed=7).scan_inventory()
        b = PortScanner(self.inventory(), seed=7).scan_inventory()
        assert a == b

    def test_v6_drift_exists_at_scale(self):
        # Over many hosts, some IPv6 faces must differ from the profile.
        inventory = {
            (IPV6, addr("2600:100::") + i): "web" for i in range(1, 300)
        }
        scanner = PortScanner(inventory, seed=3)
        drifted = sum(
            1
            for o in scanner.scan_inventory()
            if o.is_responsive and o.responsive_ports != frozenset({80, 443})
        )
        assert drifted > 0


class TestScanAnalysis:
    def world(self):
        pair = SiblingPair(
            v4_prefix=p("5.1.0.0/24"),
            v6_prefix=p("2600:100::/48"),
            similarity=1.0,
            shared_domains=frozenset({"d.example.com"}),
            v4_domain_count=1,
            v6_domain_count=1,
        )
        dead_pair = SiblingPair(
            v4_prefix=p("5.7.0.0/24"),
            v6_prefix=p("2600:700::/48"),
            similarity=1.0,
            shared_domains=frozenset({"q.example.com"}),
            v4_domain_count=1,
            v6_domain_count=1,
        )
        siblings = SiblingSet(REFERENCE_DATE, [pair, dead_pair])
        inventory = {
            (IPV4, addr("5.1.0.10")): "web",
            (IPV6, addr("2600:100::10")): "web",
        }
        return siblings, inventory

    def test_overlap_and_responsiveness(self):
        siblings, inventory = self.world()
        observations = PortScanner(inventory, seed=1).scan_inventory()
        results = portscan_overlap(siblings, observations)
        assert len(results) == 2
        by_prefix = {r.v4_prefix: r for r in results}
        assert not by_prefix[p("5.7.0.0/24")].responsive
        assert 0.0 <= responsive_share(results) <= 1.0

    def test_identical_profiles_give_high_port_jaccard(self):
        siblings, inventory = self.world()
        # Use a seed where both sides respond (search a few seeds).
        for seed in range(20):
            observations = PortScanner(inventory, seed=seed).scan_inventory()
            results = portscan_overlap(siblings, observations)
            live = next(r for r in results if r.v4_prefix == p("5.1.0.0/24"))
            if live.responsive and live.port_jaccard == 1.0:
                return
        pytest.fail("no seed produced a perfect port match")

    def test_heatmap_shape_and_sum(self):
        siblings, inventory = self.world()
        observations = PortScanner(inventory, seed=1).scan_inventory()
        results = portscan_overlap(siblings, observations)
        matrix = scan_heatmap(results, bins=10)
        assert len(matrix) == 10 and all(len(row) == 10 for row in matrix)
        total = sum(sum(row) for row in matrix)
        assert total == pytest.approx(100.0) or total == 0.0

    def test_heatmap_empty(self):
        assert scan_heatmap([], bins=5) == [[0.0] * 5 for _ in range(5)]


class TestVantagePoints:
    @pytest.fixture(scope="class")
    def universe(self):
        from repro.synth import build_universe

        return build_universe("tiny")

    @pytest.fixture(scope="class")
    def siblings(self, universe):
        return detect_siblings(
            universe.snapshot_at(REFERENCE_DATE),
            universe.annotator_at(REFERENCE_DATE),
        )

    def test_generation(self, universe):
        points = generate_vantage_points(universe, 50)
        assert len(points) == 50
        assert all(q.kind is VantageKind.ATLAS_PROBE for q in points)
        vps = generate_vantage_points(universe, 10, VantageKind.VPS)
        assert all(q.provider is not None for q in vps)

    def test_coverage_report_shares(self, universe, siblings):
        points = generate_vantage_points(universe, universe.config.n_probes)
        report = evaluate_coverage(points, siblings)
        assert report.total == universe.config.n_probes
        # The placement mix should land near the paper's 42.5/32/25 split.
        assert 0.25 < report.fully_covered_share < 0.65
        assert 0.10 < report.partially_covered_share < 0.50
        assert 0.10 < report.not_covered_share < 0.45
        # Most fully covered probes sit inside one best-match pair.
        assert report.best_match_share > 0.6

    def test_synthetic_report(self):
        pair = SiblingPair(
            v4_prefix=p("5.1.0.0/24"),
            v6_prefix=p("2600:100::/48"),
            similarity=1.0,
            shared_domains=frozenset({"d"}),
            v4_domain_count=1,
            v6_domain_count=1,
        )
        siblings = SiblingSet(REFERENCE_DATE, [pair])
        inside = VantagePoint(0, VantageKind.ATLAS_PROBE, addr("5.1.0.9"), addr("2600:100::9"))
        partial = VantagePoint(1, VantageKind.ATLAS_PROBE, addr("5.1.0.9"), addr("2600:999::9"))
        outside = VantagePoint(2, VantageKind.ATLAS_PROBE, addr("9.9.9.9"), addr("2600:999::9"))
        report = evaluate_coverage([inside, partial, outside], siblings)
        assert report.fully_covered == 1
        assert report.partially_covered == 1
        assert report.not_covered == 1
        assert report.in_best_match_pair == 1
        assert report.best_match_share == 1.0
