"""Property-based suite for the open-loop load generator.

``benchmarks/loadgen.py`` is the measurement instrument behind the
serving-fleet numbers in ``docs/PERFORMANCE.md`` — an instrument the
benchmarks can only trust if its schedule layer is *deterministic* and
its statistics are *correct*.  Hypothesis drives both claims:

* **Determinism** — the same (targets, count, rate, mix, seed) always
  yields a byte-identical encoded stream, so any benchmark run is
  replayable from its logged seed.
* **Mix fidelity** — over a long schedule the empirical kind ratios
  match the requested mix within binomial tolerance.
* **Percentile correctness** — :func:`~benchmarks.loadgen.percentile`
  agrees with ``statistics.quantiles(method="inclusive")`` at every
  interior integer percentile, and with ``numpy.percentile`` when
  numpy is importable (it is absent in CI, so the stdlib oracle is the
  one that always runs).
* **Structural invariants** — offsets non-decreasing, per-kind query
  counts exact, every query drawn from the target list, Zipf weights a
  monotone probability vector.
"""

import math
import pathlib
import statistics
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

REPO = pathlib.Path(__file__).resolve().parents[1]
if str(REPO) not in sys.path:  # cwd-robust: pytest may run from anywhere
    sys.path.insert(0, str(REPO))

from benchmarks.loadgen import (  # noqa: E402 (path bootstrap above)
    DEFAULT_TARGETS,
    TrafficMix,
    encode_schedule,
    generate_schedule,
    parse_mix,
    percentile,
    summarize,
    zipf_weights,
)

try:
    import numpy
except ImportError:  # CI containers have no numpy; stdlib oracle covers
    numpy = None

TARGETS = list(DEFAULT_TARGETS)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
ratios = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def mixes(draw) -> TrafficMix:
    point = draw(ratios)
    batch = draw(ratios)
    snapshot = draw(ratios)
    if point + batch + snapshot < 1e-6:
        point = 1.0
    return TrafficMix(
        "prop",
        point=point,
        batch=batch,
        snapshot=snapshot,
        batch_size=draw(st.integers(min_value=1, max_value=64)),
        zipf_s=draw(
            st.floats(
                min_value=0.0,
                max_value=3.0,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
    )


class TestDeterminism:
    @given(
        seed=seeds,
        count=st.integers(min_value=0, max_value=300),
        rate=st.floats(min_value=1.0, max_value=1e6),
        mix=mixes(),
    )
    def test_same_seed_byte_identical(self, seed, count, rate, mix):
        first = encode_schedule(generate_schedule(TARGETS, count, rate, mix, seed))
        second = encode_schedule(generate_schedule(TARGETS, count, rate, mix, seed))
        assert first == second

    def test_different_seeds_differ(self):
        mix = TrafficMix("point")
        one = encode_schedule(generate_schedule(TARGETS, 50, 100.0, mix, 1))
        two = encode_schedule(generate_schedule(TARGETS, 50, 100.0, mix, 2))
        assert one != two

    def test_encoding_is_stable_bytes(self):
        """A pinned golden prefix: the canonical encoding never drifts."""
        mix = TrafficMix("point")
        stream = encode_schedule(generate_schedule(TARGETS, 2, 100.0, mix, 7))
        lines = stream.decode("utf-8").splitlines()
        assert len(lines) == 2
        assert all(line.startswith("[") and line.endswith("]") for line in lines)
        assert stream.endswith(b"\n")


class TestMixFidelity:
    @settings(max_examples=25)
    @given(seed=seeds, mix=mixes())
    def test_kind_ratios_within_tolerance(self, seed, mix):
        count = 4000
        schedule = generate_schedule(TARGETS, count, 1000.0, mix, seed)
        expected = dict(zip(("point", "batch", "snapshot"), mix.ratios()))
        for kind, want in expected.items():
            got = sum(1 for r in schedule if r.kind == kind) / count
            # Binomial sd at n=4000 is <= 0.0079; 0.05 is > 6 sigma.
            assert abs(got - want) < 0.05, (kind, got, want)

    @given(seed=seeds, mix=mixes())
    @settings(max_examples=25)
    def test_query_counts_by_kind(self, seed, mix):
        for request in generate_schedule(TARGETS, 200, 1000.0, mix, seed):
            if request.kind == "point":
                assert len(request.queries) == 1
            elif request.kind == "batch":
                assert len(request.queries) == mix.batch_size
            else:
                assert request.queries == ()
            assert all(query in TARGETS for query in request.queries)

    @given(seed=seeds)
    def test_offsets_non_decreasing(self, seed):
        schedule = generate_schedule(
            TARGETS, 100, 500.0, TrafficMix("point"), seed
        )
        offsets = [request.offset for request in schedule]
        assert offsets == sorted(offsets)
        assert all(offset >= 0 for offset in offsets)

    def test_zipf_skews_toward_first_ranked(self):
        schedule = generate_schedule(
            TARGETS, 4000, 1000.0, TrafficMix("point", zipf_s=1.5), 11
        )
        counts = [
            sum(1 for r in schedule if r.queries[0] == target)
            for target in TARGETS
        ]
        assert counts[0] > counts[-1]
        assert counts[0] > 4000 / len(TARGETS)


class TestPercentile:
    samples = st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=2,
        max_size=200,
    )

    @given(data=samples, q=st.integers(min_value=1, max_value=99))
    def test_matches_statistics_inclusive(self, data, q):
        cuts = statistics.quantiles(data, n=100, method="inclusive")
        assert percentile(data, q) == pytest.approx(
            cuts[q - 1], rel=1e-9, abs=1e-9
        )

    @pytest.mark.skipif(numpy is None, reason="numpy not installed")
    @given(
        data=samples,
        q=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_matches_numpy_linear(self, data, q):
        want = float(numpy.percentile(data, q, method="linear"))
        assert percentile(data, q) == pytest.approx(want, rel=1e-9, abs=1e-9)

    @given(data=samples)
    def test_extremes_are_min_and_max(self, data):
        assert percentile(data, 0) == min(data)
        assert percentile(data, 100) == max(data)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestZipfWeights:
    @given(
        count=st.integers(min_value=1, max_value=500),
        s=st.floats(
            min_value=0.0, max_value=4.0, allow_nan=False, allow_infinity=False
        ),
    )
    def test_probability_vector(self, count, s):
        weights = zipf_weights(count, s)
        assert len(weights) == count
        assert all(weight > 0 for weight in weights)
        assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)
        # Monotone non-increasing: rank 1 is the most popular.
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.1)


class TestParseMixAndValidation:
    def test_parse_mix_roundtrip(self):
        mix = parse_mix("point=0.8,batch=0.15,snapshot=0.05")
        point, batch, snapshot = mix.ratios()
        assert point == pytest.approx(0.8)
        assert batch == pytest.approx(0.15)
        assert snapshot == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "text", ["", "point", "bogus=1", "point=0,batch=0", "point=x"]
    )
    def test_parse_mix_rejects(self, text):
        with pytest.raises(ValueError):
            parse_mix(text)

    def test_generate_schedule_rejects_bad_args(self):
        mix = TrafficMix("point")
        with pytest.raises(ValueError):
            generate_schedule(TARGETS, -1, 100.0, mix, 1)
        with pytest.raises(ValueError):
            generate_schedule(TARGETS, 10, 0.0, mix, 1)
        with pytest.raises(ValueError):
            TrafficMix("none", point=0.0).ratios()

    def test_summarize_counts_errors(self):
        from benchmarks.loadgen import LoadResult, RequestRecord

        records = [
            RequestRecord(0.0, "point", True, 0.002, 1.0),
            RequestRecord(0.1, "point", False, 0.0, 1.1),
            RequestRecord(0.2, "point", True, 0.004, 1.2),
        ]
        summary = summarize(LoadResult(records, 2.0))
        assert summary["requests"] == 3
        assert summary["ok"] == 2
        assert summary["errors"] == 1
        assert summary["qps"] == pytest.approx(1.0)
        assert summary["p50"] == pytest.approx(0.003)

    def test_summarize_breaks_down_status_codes(self):
        from benchmarks.loadgen import LoadResult, RequestRecord

        records = [
            RequestRecord(0.0, "point", True, 0.002, 1.0, (), 200),
            RequestRecord(0.1, "point", False, 0.003, 1.1, (), 500),
            RequestRecord(0.2, "point", False, 0.0, 1.2, (), None, True),
            RequestRecord(0.3, "point", True, 0.004, 1.3, (), 200, True),
        ]
        summary = summarize(LoadResult(records, 2.0))
        assert summary["status_counts"] == {
            "200": 2,
            "500": 1,
            "transport": 1,
        }
        assert summary["retried"] == 2


class TestExecutionRecordsStatus:
    """The runner's records carry HTTP status; non-200 is never ``ok``."""

    def test_non_200_responses_are_errors(self):
        import json
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from benchmarks.loadgen import run_load

        class StubHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self):
                status = 500 if "broken" in self.path else 200
                body = json.dumps({"found": False}).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), StubHandler)
        server.daemon_threads = True
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        try:
            host, port = server.server_address[:2]
            schedule = generate_schedule(
                ["healthy-target", "broken-target"],
                40,
                10000.0,
                TrafficMix("point", zipf_s=0.0),
                seed=3,
            )
            result = run_load(
                f"http://{host}:{port}", schedule, connections=2
            )
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

        assert len(result.records) == 40
        broken = [r for r in result.records if r.status == 500]
        healthy = [r for r in result.records if r.status == 200]
        assert broken and healthy
        assert all(not record.ok for record in broken), (
            "a 500 response must never count as a successful request"
        )
        assert all(record.ok for record in healthy)
        summary = summarize(result)
        assert summary["errors"] == len(broken)
        assert summary["status_counts"]["500"] == len(broken)
        assert summary["status_counts"]["200"] == len(healthy)
