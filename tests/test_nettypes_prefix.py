"""Tests for repro.nettypes.prefix.Prefix."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix, PrefixError, parse_many


def v4_prefixes():
    return st.builds(
        lambda value, length: Prefix.from_address(IPV4, value, length),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
    )


def v6_prefixes():
    return st.builds(
        lambda value, length: Prefix.from_address(IPV6, value, length),
        st.integers(min_value=0, max_value=2**128 - 1),
        st.integers(min_value=0, max_value=128),
    )


class TestConstruction:
    def test_parse(self):
        p = Prefix.parse("192.0.2.0/24")
        assert (p.version, p.length) == (IPV4, 24)
        assert str(p) == "192.0.2.0/24"

    def test_parse_v6(self):
        p = Prefix.parse("2001:db8::/32")
        assert (p.version, p.length) == (IPV6, 32)
        assert str(p) == "2001:db8::/32"

    def test_parse_bare_address(self):
        assert Prefix.parse("192.0.2.1").length == 32
        assert Prefix.parse("2001:db8::1").length == 128

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("192.0.2.1/24")

    def test_from_address_masks(self):
        p = Prefix.from_address(IPV4, Prefix.parse("192.0.2.77").value, 24)
        assert str(p) == "192.0.2.0/24"

    @pytest.mark.parametrize("bad", ["192.0.2.0/33", "2001:db8::/129", "192.0.2.0/x"])
    def test_rejects_bad_length(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_immutable(self):
        p = Prefix.parse("192.0.2.0/24")
        with pytest.raises(AttributeError):
            p.length = 25

    def test_parse_many(self):
        ps = parse_many(["10.0.0.0/8", "2001:db8::/32"])
        assert len(ps) == 2


class TestContainment:
    def test_contains_more_specific(self):
        p24 = Prefix.parse("192.0.2.0/24")
        p25 = Prefix.parse("192.0.2.128/25")
        assert p24.contains(p25)
        assert not p25.contains(p24)
        assert p25 in p24

    def test_self_containment(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.contains(p)

    def test_cross_version(self):
        assert not Prefix.parse("0.0.0.0/0").contains(Prefix.parse("::/0"))

    def test_contains_address(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.contains_address(Prefix.parse("192.0.2.200").value)
        assert not p.contains_address(Prefix.parse("192.0.3.0").value)
        assert Prefix.parse("192.0.2.200").value in p

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    @given(v4_prefixes(), v4_prefixes())
    def test_matches_stdlib_subnet_of(self, a, b):
        na = ipaddress.ip_network(str(a))
        nb = ipaddress.ip_network(str(b))
        assert a.contains(b) == nb.subnet_of(na)


class TestArithmetic:
    def test_supernet(self):
        p = Prefix.parse("192.0.2.128/25")
        assert str(p.supernet()) == "192.0.2.0/24"
        assert str(p.supernet(16)) == "192.0.0.0/16"

    def test_supernet_invalid(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").supernet()

    def test_subnets(self):
        p = Prefix.parse("192.0.2.0/24")
        subs = list(p.subnets())
        assert [str(s) for s in subs] == ["192.0.2.0/25", "192.0.2.128/25"]

    def test_subnets_two_levels(self):
        p = Prefix.parse("192.0.2.0/24")
        subs = list(p.subnets(26))
        assert len(subs) == 4
        assert all(p.contains(s) for s in subs)

    def test_sibling_subnet(self):
        p = Prefix.parse("192.0.2.0/25")
        assert str(p.sibling_subnet()) == "192.0.2.128/25"
        assert p.sibling_subnet().sibling_subnet() == p

    def test_bit_at(self):
        p = Prefix.parse("128.0.0.0/1")
        assert p.bit_at(0) == 1
        assert Prefix.parse("0.0.0.0/0").bit_at(0) == 0

    def test_common_prefix(self):
        a = Prefix.parse("192.0.2.0/24")
        b = Prefix.parse("192.0.3.0/24")
        assert str(a.common_prefix(b)) == "192.0.2.0/23"

    def test_common_prefix_nested(self):
        a = Prefix.parse("192.0.2.0/24")
        b = Prefix.parse("192.0.2.64/26")
        assert a.common_prefix(b) == a

    def test_common_prefix_cross_version(self):
        with pytest.raises(PrefixError):
            Prefix.parse("192.0.2.0/24").common_prefix(Prefix.parse("2001:db8::/32"))

    def test_addresses(self):
        p = Prefix.parse("192.0.2.0/30")
        assert p.num_addresses == 4
        assert p.last_address - p.first_address == 3

    @given(v6_prefixes())
    def test_supernet_contains_self(self, p):
        if p.length > 0:
            assert p.supernet().contains(p)

    @given(v4_prefixes())
    def test_subnets_partition(self, p):
        if p.length < 32:
            left, right = p.subnets()
            assert left.num_addresses + right.num_addresses == p.num_addresses
            assert p.contains(left) and p.contains(right)
            assert not left.overlaps(right)

    @given(v4_prefixes(), v4_prefixes())
    def test_common_prefix_contains_both(self, a, b):
        c = a.common_prefix(b)
        assert c.contains(a) and c.contains(b)
        # Maximality: one bit longer no longer covers both (when possible).
        if c.length < min(a.length, b.length):
            tighter = Prefix.from_address(IPV4, a.value, c.length + 1)
            assert not (tighter.contains(a) and tighter.contains(b))


class TestOrderingAndHash:
    def test_sorting(self):
        ps = parse_many(["192.0.3.0/24", "192.0.2.0/24", "192.0.2.0/25"])
        assert [str(p) for p in sorted(ps)] == [
            "192.0.2.0/24",
            "192.0.2.0/25",
            "192.0.3.0/24",
        ]

    def test_hashable(self):
        a = Prefix.parse("192.0.2.0/24")
        b = Prefix.parse("192.0.2.0/24")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_different_length(self):
        assert Prefix.parse("192.0.2.0/24") != Prefix.parse("192.0.2.0/25")

    def test_repr_shows_cidr_text(self):
        p = Prefix.parse("2001:db8::/32")
        assert repr(p) == "Prefix('2001:db8::/32')"


class TestNetworkKey:
    @given(v4_prefixes())
    def test_roundtrip_v4(self, prefix):
        assert (
            Prefix.from_network_key(IPV4, prefix.network_key, prefix.length)
            == prefix
        )

    @given(v6_prefixes())
    def test_roundtrip_v6(self, prefix):
        assert (
            Prefix.from_network_key(IPV6, prefix.network_key, prefix.length)
            == prefix
        )

    def test_key_width_matches_length(self):
        prefix = Prefix.parse("255.255.255.0/24")
        assert prefix.network_key == 0xFFFFFF
        assert prefix.network_key.bit_length() == 24

    def test_address_key_containment(self):
        from repro.nettypes.prefix import address_network_key

        prefix = Prefix.parse("2001:db8::/32")
        inside = prefix.value | 0xDEAD
        outside = Prefix.parse("2001:db9::").value
        assert address_network_key(IPV6, inside, 32) == prefix.network_key
        assert address_network_key(IPV6, outside, 32) != prefix.network_key

    def test_rejects_out_of_range(self):
        with pytest.raises(PrefixError):
            Prefix.from_network_key(IPV4, 1 << 24, 24)
        with pytest.raises(PrefixError):
            Prefix.from_network_key(IPV4, -1, 24)
        with pytest.raises(PrefixError):
            Prefix.from_network_key(5, 0, 0)
        with pytest.raises(PrefixError):
            Prefix.from_network_key(IPV4, 0, 33)
