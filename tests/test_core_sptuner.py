"""Tests for SP-Tuner-MS and SP-Tuner-LS on constructed fixtures."""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.detection import detect_with_index
from repro.core.domainsets import build_index
from repro.core.siblings import SiblingSet
from repro.core.sptuner import (
    DEFAULT_CONFIG,
    ROUTABLE_CONFIG,
    LsConfig,
    SpTunerLS,
    SpTunerMS,
    TunerConfig,
)
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.prefix import Prefix

DATE = datetime.date(2024, 9, 11)


def p(text):
    return Prefix.parse(text)


def addr(text):
    return Prefix.parse(text).value


def shared_v4_world():
    """Two deployments sharing one announced IPv4 /24 (distinct /28
    sub-blocks) with dedicated IPv6 /48s — the DEEP_SHARED situation
    SP-Tuner-MS exists to repair."""
    rib = Rib()
    rib.announce(p("5.1.0.0/24"), 64500)
    rib.announce(p("2600:100::/48"), 64500)
    rib.announce(p("2600:200::/48"), 64500)
    observations = [
        # Deployment X in 5.1.0.0/28 ↔ 2600:100::/48.
        DomainObservation("x1.example.com", (addr("5.1.0.2"),), (addr("2600:100::2"),)),
        DomainObservation("x2.example.com", (addr("5.1.0.3"),), (addr("2600:100::3"),)),
        # Deployment Y in 5.1.0.192/28 ↔ 2600:200::/48.
        DomainObservation("y1.example.com", (addr("5.1.0.200"),), (addr("2600:200::2"),)),
    ]
    snapshot = DnsSnapshot(DATE, observations)
    annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
    return snapshot, annotator, rib


class TestSpTunerMS:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TunerConfig(v4_threshold=0)
        with pytest.raises(ValueError):
            TunerConfig(v6_threshold=200)
        assert DEFAULT_CONFIG.v4_threshold == 28
        assert ROUTABLE_CONFIG.v6_threshold == 48

    def test_repairs_deep_shared_pair(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        # Default: (5.1.0.0/24, 2600:100::/48) has J = 2/3.
        default_pair = siblings.get(p("5.1.0.0/24"), p("2600:100::/48"))
        assert default_pair is not None
        assert default_pair.similarity == pytest.approx(2 / 3)

        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert tuned.perfect_match_share == 1.0
        # Both deployments recovered as perfect pairs.
        v4_tuned = sorted(str(q) for q in tuned.unique_v4_prefixes())
        assert all(p("5.1.0.0/24").contains(Prefix.parse(t)) for t in v4_tuned)
        assert len(tuned) == 2

    def test_thresholds_respected(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(
            index, TunerConfig(v4_threshold=28, v6_threshold=96)
        ).tune_all(siblings)
        for pair in tuned:
            assert pair.v4_prefix.length <= 28
            assert pair.v6_prefix.length <= 96

    def test_routable_threshold_cannot_fix_deep_sharing(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, ROUTABLE_CONFIG).tune_all(siblings)
        # The shared /24 cannot be split below /24, so imperfection stays.
        assert tuned.perfect_match_share < 1.0

    def test_no_domain_lost_with_branches(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        original_domains = set()
        for pair in siblings:
            original_domains |= pair.shared_domains
        tuned_domains = set()
        for pair in tuned:
            tuned_domains |= pair.shared_domains
        assert tuned_domains >= original_domains

    def test_branch_ablation_loses_domains(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        no_branches = SpTunerMS(
            index, TunerConfig(track_branches=False)
        ).tune_all(siblings)
        with_branches = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        domains = lambda s: {d for pair in s for d in pair.shared_domains}
        assert domains(no_branches) <= domains(with_branches)

    def test_perfect_pair_descends_to_threshold(self):
        # A single-domain pair keeps J=1 while descending; the paper's
        # Figure 36 shows most pairs ending exactly at /28-/96.
        rib = Rib()
        rib.announce(p("5.9.0.0/24"), 1)
        rib.announce(p("2600:900::/48"), 1)
        snapshot = DnsSnapshot(
            DATE,
            [DomainObservation("solo.example.com", (addr("5.9.0.77"),), (addr("2600:900::77"),))],
        )
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert len(tuned) == 1
        pair = next(iter(tuned))
        assert pair.v4_prefix.length == 28
        assert pair.v6_prefix.length == 96
        assert pair.similarity == 1.0
        assert pair.v4_prefix.contains_address(addr("5.9.0.77"))

    def test_already_deeper_than_threshold_untouched(self):
        rib = Rib()
        rib.announce(p("5.9.9.0/30"), 1)  # deeper than /28 threshold
        rib.announce(p("2600:900::/48"), 1)
        snapshot = DnsSnapshot(
            DATE,
            [DomainObservation("deep.example.com", (addr("5.9.9.1"),), (addr("2600:900::1"),))],
        )
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        pair = next(iter(tuned))
        assert pair.v4_prefix == p("5.9.9.0/30")  # not widened, not split

    def test_never_decreases_similarity(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert tuned.mean_similarity >= siblings.mean_similarity - 1e-9

    def test_shared_address_is_irreducible(self):
        # Two domains on ONE IPv4 address, only one present on IPv6:
        # no threshold can separate them.
        rib = Rib()
        rib.announce(p("5.8.0.0/24"), 1)
        rib.announce(p("2600:800::/48"), 1)
        shared = addr("5.8.0.10")
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation("both.example.com", (shared,), (addr("2600:800::1"),)),
                DomainObservation("v4heavy.example.com", (shared,), (addr("2600:999::1"),)),
            ],
        )
        rib.announce(p("2600:999::/48"), 2)
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, TunerConfig(v4_threshold=32, v6_threshold=128)).tune_all(siblings)
        pair_values = sorted(pair.similarity for pair in tuned)
        assert all(v < 1.0 for v in pair_values)


class TestSpTunerLS:
    def test_widening_does_not_improve(self):
        snapshot, annotator, rib = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuner = SpTunerLS(index, rib)
        tuned = tuner.tune_all(siblings)
        # The paper's negative result: similarity distribution unchanged.
        assert sorted(tuned.similarities()) == pytest.approx(
            sorted(siblings.similarities())
        )

    def test_prefixes_never_narrower(self):
        snapshot, annotator, rib = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuner = SpTunerLS(index, rib, LsConfig(unbounded=True))
        for pair in siblings:
            refined = tuner.tune_pair(pair.v4_prefix, pair.v6_prefix)
            assert refined.v4_prefix.length <= pair.v4_prefix.length
            assert refined.v6_prefix.length <= pair.v6_prefix.length

    def test_as_change_stops_walk(self):
        # Two /24s under one /23 announced by different ASes: widening
        # the first /24 to the /23 would cross into AS 64501's space.
        rib = Rib()
        rib.announce(p("5.4.0.0/24"), 64500)
        rib.announce(p("5.4.1.0/24"), 64501)
        rib.announce(p("2600:400::/48"), 64500)
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation("a.example.com", (addr("5.4.0.1"),), (addr("2600:400::1"),)),
                DomainObservation("b.example.com", (addr("5.4.1.1"),), (addr("2600:400::2"),)),
            ],
        )
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        tuner = SpTunerLS(index, rib, LsConfig(unbounded=True))
        pair = siblings.get(p("5.4.0.0/24"), p("2600:400::/48"))
        assert pair is not None
        refined = tuner.tune_pair(pair.v4_prefix, pair.v6_prefix)
        # Widening to 5.4.0.0/23 would raise J (both domains shared) but
        # the origin-AS change forbids it.
        assert refined.v4_prefix == p("5.4.0.0/24")


class TestTunerOnUniverse:
    @pytest.fixture(scope="class")
    def detected(self):
        from repro.dates import REFERENCE_DATE
        from repro.synth import build_universe

        universe = build_universe("tiny")
        snapshot = universe.snapshot_at(REFERENCE_DATE)
        annotator = universe.annotator_at(REFERENCE_DATE)
        return detect_with_index(snapshot, annotator)

    def test_improvement_ordering(self, detected):
        siblings, index = detected
        routable = SpTunerMS(index, ROUTABLE_CONFIG).tune_all(siblings)
        deep = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert (
            siblings.perfect_match_share
            < routable.perfect_match_share
            < deep.perfect_match_share
        )

    def test_tuned_prefixes_nest_in_originals(self, detected):
        siblings, index = detected
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        original_v4 = siblings.unique_v4_prefixes()
        for pair in tuned:
            assert any(o.contains(pair.v4_prefix) for o in original_v4)

    def test_no_domain_lost_at_scale(self, detected):
        siblings, index = detected
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        before = {d for pair in siblings for d in pair.shared_domains}
        after = {d for pair in tuned for d in pair.shared_domains}
        assert after >= before

    def test_deterministic(self, detected):
        siblings, index = detected
        a = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        b = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert {(q.v4_prefix, q.v6_prefix, q.similarity) for q in a} == {
            (q.v4_prefix, q.v6_prefix, q.similarity) for q in b
        }


class TestTunerAdversarial:
    """Edge cases that stress the descent and branch logic."""

    def test_asymmetric_thresholds_one_side_stuck(self):
        # v4 threshold equals the announced length: only v6 may descend.
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuner = SpTunerMS(index, TunerConfig(v4_threshold=24, v6_threshold=96))
        pair = siblings.get(p("5.1.0.0/24"), p("2600:100::/48"))
        refined = tuner.tune_pair(pair.v4_prefix, pair.v6_prefix)
        for result in refined:
            assert result.v4_prefix.length <= 24
            assert result.v6_prefix.length <= 96

    def test_tie_break_prefers_depth(self):
        # Single domain: J stays 1 all the way down; the tuner must
        # descend to the exact thresholds rather than stopping early.
        rib = Rib()
        rib.announce(p("5.3.0.0/20"), 1)
        rib.announce(p("2600:300::/32"), 1)
        snapshot = DnsSnapshot(
            DATE,
            [DomainObservation("deep.example.com", (addr("5.3.1.9"),), (addr("2600:300::9"),))],
        )
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, TunerConfig(26, 100)).tune_all(siblings)
        pair = next(iter(tuned))
        assert pair.v4_prefix.length == 26
        assert pair.v6_prefix.length == 100

    def test_convergent_inputs_deduplicate(self):
        # Two default pairs that tune into the same refined pair must
        # appear once in the output set.
        rib = Rib()
        rib.announce(p("5.6.0.0/24"), 1)
        rib.announce(p("2600:600::/48"), 1)
        rib.announce(p("2600:700::/48"), 1)
        shared6 = addr("2600:600::1")
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation("s.example.com", (addr("5.6.0.1"),), (shared6, addr("2600:700::1"))),
            ],
        )
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        assert len(siblings) == 2  # ties kept at detection time
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        keys = [(q.v4_prefix, q.v6_prefix) for q in tuned]
        assert len(keys) == len(set(keys))

    def test_branch_pairs_have_nonzero_similarity(self):
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert all(pair.similarity > 0.0 for pair in tuned)
        assert all(pair.shared_domains for pair in tuned)

    def test_tuner_is_idempotent_on_output_prefixes(self):
        # Re-tuning an already tuned pair must not widen or change it
        # when the thresholds are unchanged.
        snapshot, annotator, _ = shared_v4_world()
        siblings, index = detect_with_index(snapshot, annotator)
        tuner = SpTunerMS(index, DEFAULT_CONFIG)
        tuned = tuner.tune_all(siblings)
        retuned = tuner.tune_all(tuned)
        assert {(q.v4_prefix, q.v6_prefix, q.similarity) for q in retuned} == {
            (q.v4_prefix, q.v6_prefix, q.similarity) for q in tuned
        }
