"""Tests for Steps 1-4 on hand-constructed fixtures."""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.detection import (
    BestMatchMode,
    compute_pair_stats,
    detect_siblings,
    detect_with_index,
    select_best_matches,
)
from repro.core.domainsets import build_index
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.prefix import Prefix

DATE = datetime.date(2024, 9, 11)


def p(text):
    return Prefix.parse(text)


def addr(text):
    return Prefix.parse(text).value


def build_world():
    """Two IPv4 and two IPv6 prefixes with controlled domain overlap.

    d1, d2: A4 ↔ A6 (perfect pair)
    d3:     A4 ↔ B6 (pulls A4 toward B6, but minority)
    d4:     B4 ↔ B6 (perfect pair)
    """
    rib = Rib()
    rib.announce(p("5.1.0.0/24"), 64500)
    rib.announce(p("5.2.0.0/24"), 64501)
    rib.announce(p("2600:100::/48"), 64500)
    rib.announce(p("2600:200::/48"), 64501)
    observations = [
        DomainObservation("d1.example.com", (addr("5.1.0.10"),), (addr("2600:100::10"),)),
        DomainObservation("d2.example.com", (addr("5.1.0.11"),), (addr("2600:100::11"),)),
        DomainObservation("d3.example.com", (addr("5.1.0.12"),), (addr("2600:200::12"),)),
        DomainObservation("d4.example.com", (addr("5.2.0.10"),), (addr("2600:200::10"),)),
    ]
    snapshot = DnsSnapshot(DATE, observations)
    annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
    return snapshot, annotator


class TestIndex:
    def test_grouping(self):
        snapshot, annotator = build_world()
        index = build_index(snapshot, annotator)
        assert index.domain_count == 4
        assert index.v4_prefix_count == 2
        assert index.v6_prefix_count == 2
        assert index.domains_of(p("5.1.0.0/24")) == {
            "d1.example.com",
            "d2.example.com",
            "d3.example.com",
        }
        assert index.domains_of(p("2600:200::/48")) == {
            "d3.example.com",
            "d4.example.com",
        }

    def test_non_ds_domain_ignored(self):
        snapshot, annotator = build_world()
        snapshot._add(DomainObservation("v4only.example.com", (addr("5.1.0.99"),), ()))
        index = build_index(snapshot, annotator)
        assert "v4only.example.com" not in index.domain_v4_prefixes

    def test_reserved_address_discard(self):
        snapshot, annotator = build_world()
        # DS domain whose only v4 address is private: dropped entirely.
        snapshot._add(
            DomainObservation(
                "private.example.com", (addr("10.0.0.1"),), (addr("2600:100::77"),)
            )
        )
        index = build_index(snapshot, annotator)
        assert index.dropped_domains == 1
        assert "private.example.com" not in index.domain_v4_prefixes

    def test_unrouted_address_discard(self):
        snapshot, annotator = build_world()
        snapshot._add(
            DomainObservation(
                "unrouted.example.com", (addr("93.93.93.93"),), (addr("2600:100::88"),)
            )
        )
        index = build_index(snapshot, annotator)
        assert index.dropped_domains == 1

    def test_multi_prefix_domain(self):
        snapshot, annotator = build_world()
        snapshot._add(
            DomainObservation(
                "multi.example.com",
                (addr("5.1.0.50"), addr("5.2.0.50")),
                (addr("2600:100::50"),),
            )
        )
        index = build_index(snapshot, annotator)
        assert index.domain_v4_prefixes["multi.example.com"] == {
            p("5.1.0.0/24"),
            p("5.2.0.0/24"),
        }


class TestPairStats:
    def test_sparse_pairs_only(self):
        snapshot, annotator = build_world()
        index = build_index(snapshot, annotator)
        stats = compute_pair_stats(index)
        keys = {(s.v4_prefix, s.v6_prefix) for s in stats}
        # (B4, A6) shares nothing and must not materialize.
        assert (p("5.2.0.0/24"), p("2600:100::/48")) not in keys
        assert len(stats) == 3

    def test_counts(self):
        snapshot, annotator = build_world()
        index = build_index(snapshot, annotator)
        stats = {(s.v4_prefix, s.v6_prefix): s for s in compute_pair_stats(index)}
        a4a6 = stats[(p("5.1.0.0/24"), p("2600:100::/48"))]
        assert len(a4a6.shared_domains) == 2
        assert a4a6.v4_domain_count == 3
        assert a4a6.v6_domain_count == 2
        assert a4a6.similarity("jaccard") == pytest.approx(2 / 3)
        assert a4a6.similarity("overlap") == pytest.approx(1.0)


class TestBestMatch:
    def test_either_mode(self):
        snapshot, annotator = build_world()
        siblings = detect_siblings(snapshot, annotator)
        keys = {(s.v4_prefix, s.v6_prefix) for s in siblings}
        # A4's best is A6 (2/3 beats 1/4); B6's best is B4 (1/2 vs 1/4);
        # (A4,B6) loses on both sides and must be absent.
        assert (p("5.1.0.0/24"), p("2600:100::/48")) in keys
        assert (p("5.2.0.0/24"), p("2600:200::/48")) in keys
        assert (p("5.1.0.0/24"), p("2600:200::/48")) not in keys

    def test_similarity_values(self):
        snapshot, annotator = build_world()
        siblings = detect_siblings(snapshot, annotator)
        pair = siblings.get(p("5.1.0.0/24"), p("2600:100::/48"))
        assert pair is not None
        assert pair.similarity == pytest.approx(2 / 3)
        assert not pair.is_perfect
        assert pair.union_size == 3

    def test_ties_kept(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 1)
        rib.announce(p("2600:100::/48"), 1)
        rib.announce(p("2600:200::/48"), 1)
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation(
                    "tied.example.com",
                    (addr("5.1.0.1"),),
                    (addr("2600:100::1"), addr("2600:200::1")),
                )
            ],
        )
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        siblings = detect_siblings(snapshot, annotator)
        # Both v6 prefixes tie at J=1: both pairs kept.
        assert len(siblings) == 2

    def test_both_mode_is_subset_of_either(self):
        snapshot, annotator = build_world()
        either = detect_siblings(snapshot, annotator, mode=BestMatchMode.EITHER)
        both = detect_siblings(snapshot, annotator, mode=BestMatchMode.BOTH)
        either_keys = {(s.v4_prefix, s.v6_prefix) for s in either}
        both_keys = {(s.v4_prefix, s.v6_prefix) for s in both}
        assert both_keys <= either_keys

    def test_v4_only_mode(self):
        snapshot, annotator = build_world()
        v4only = detect_siblings(snapshot, annotator, mode=BestMatchMode.V4_ONLY)
        # Exactly one best pair per v4 prefix here (no ties).
        assert len(v4only) == len(v4only.unique_v4_prefixes())

    def test_metric_parameter(self):
        snapshot, annotator = build_world()
        overlap = detect_siblings(snapshot, annotator, metric="overlap")
        # With the overlap coefficient the subset pair (A4, A6) saturates.
        pair = overlap.get(p("5.1.0.0/24"), p("2600:100::/48"))
        assert pair is not None and pair.similarity == pytest.approx(1.0)

    def test_detect_with_index_consistency(self):
        snapshot, annotator = build_world()
        siblings, index = detect_with_index(snapshot, annotator)
        reference = detect_siblings(*build_world())
        assert {(s.v4_prefix, s.v6_prefix) for s in siblings} == {
            (s.v4_prefix, s.v6_prefix) for s in reference
        }
        assert index.domain_count == 4

    def test_select_best_matches_empty(self):
        snapshot, annotator = build_world()
        index = build_index(snapshot, annotator)
        result = select_best_matches([], index)
        assert len(result) == 0
