"""Tests for sibling prefix set pairs (the paper's future work)."""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.detection import detect_with_index
from repro.core.setpairs import build_set_pairs, summarize_set_pairs
from repro.dates import REFERENCE_DATE
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.prefix import Prefix

DATE = datetime.date(2024, 9, 11)


def p(text):
    return Prefix.parse(text)


def addr(text):
    return Prefix.parse(text).value


def fragmented_world():
    """One IPv6 /48 whose IPv4 counterpart is fragmented into two /24s —
    pair-level Jaccard is poor, set-level is perfect."""
    rib = Rib()
    rib.announce(p("5.1.0.0/24"), 64500)
    rib.announce(p("5.2.0.0/24"), 64500)
    rib.announce(p("2600:100::/48"), 64500)
    observations = [
        DomainObservation("a.example.com", (addr("5.1.0.1"),), (addr("2600:100::1"),)),
        DomainObservation("b.example.com", (addr("5.1.0.2"),), (addr("2600:100::2"),)),
        DomainObservation("c.example.com", (addr("5.2.0.1"),), (addr("2600:100::3"),)),
    ]
    snapshot = DnsSnapshot(DATE, observations)
    annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
    return detect_with_index(snapshot, annotator)


class TestSetPairs:
    def test_fragmentation_repaired(self):
        siblings, index = fragmented_world()
        # Pair level: both (v4 fragment, /48) pairs are imperfect.
        assert all(pair.similarity < 1.0 for pair in siblings)
        set_pairs = build_set_pairs(siblings, index)
        assert len(set_pairs) == 1
        set_pair = set_pairs[0]
        assert set_pair.is_fragmented
        assert set_pair.v4_prefixes == {p("5.1.0.0/24"), p("5.2.0.0/24")}
        assert set_pair.v6_prefixes == {p("2600:100::/48")}
        assert set_pair.similarity == 1.0
        assert set_pair.is_perfect

    def test_independent_components_stay_separate(self):
        siblings, index = fragmented_world()
        # Add an unrelated perfect pair in different address space.
        from repro.core.siblings import SiblingPair

        siblings.add(
            SiblingPair(
                v4_prefix=p("23.0.0.0/24"),
                v6_prefix=p("2600:900::/48"),
                similarity=1.0,
                shared_domains=frozenset({"z.example.com"}),
                v4_domain_count=1,
                v6_domain_count=1,
            )
        )
        index.v4_domains[p("23.0.0.0/24")] = {"z.example.com"}
        index.v6_domains[p("2600:900::/48")] = {"z.example.com"}
        set_pairs = build_set_pairs(siblings, index)
        assert len(set_pairs) == 2

    def test_summary_invariants(self):
        siblings, index = fragmented_world()
        set_pairs = build_set_pairs(siblings, index)
        summary = summarize_set_pairs(siblings, set_pairs)
        assert summary.set_pair_count <= summary.pair_count
        assert summary.set_perfect_share >= summary.pair_perfect_share
        assert summary.set_mean >= summary.pair_mean
        assert summary.fragmented_count == 1

    def test_set_pairs_sorted_by_weight(self):
        siblings, index = fragmented_world()
        set_pairs = build_set_pairs(siblings, index)
        sizes = [len(sp.shared_domains) for sp in set_pairs]
        assert sizes == sorted(sizes, reverse=True)


class TestSetPairsOnUniverse:
    def test_set_level_never_worse(self, tiny_universe, tiny_detection):
        siblings, index = tiny_detection
        set_pairs = build_set_pairs(siblings, index)
        summary = summarize_set_pairs(siblings, set_pairs)
        assert summary.set_pair_count > 0
        assert summary.set_mean >= summary.pair_mean
        assert summary.set_perfect_share >= summary.pair_perfect_share
        # Fragmented components exist (shared containers guarantee them).
        assert summary.fragmented_count > 0

    def test_every_pair_lands_in_exactly_one_component(
        self, tiny_universe, tiny_detection
    ):
        siblings, index = tiny_detection
        set_pairs = build_set_pairs(siblings, index)
        for pair in siblings:
            owners = [
                sp
                for sp in set_pairs
                if pair.v4_prefix in sp.v4_prefixes
                and pair.v6_prefix in sp.v6_prefixes
            ]
            assert len(owners) == 1
