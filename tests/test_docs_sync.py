"""Documentation must track the code — drift fails CI, not readers.

Four sync contracts, all mechanical:

* **CLI reference** — every ``argparse`` subcommand and every long
  option it accepts (walked from the real parser, so a new flag cannot
  be added without surfacing here) appears in the README's CLI
  reference; and the README never documents an option the parser
  doesn't know.
* **Benchmark citations** — every ``benchmarks/results/*.txt`` file
  cited in ``docs/PERFORMANCE.md`` exists, and every performance-bench
  results file (the non-figure artifacts the perf docs narrate) is
  actually cited.
* **Links and anchors** — every relative markdown link in ``README.md``
  and ``docs/*.md`` resolves to a real file, and every ``#anchor``
  matches a heading slug in its target.
* **Observability catalog** — every metric and stage name the code
  records (literal ``counter``/``gauge``/``histogram`` registrations
  and ``trace``/``record_stage`` spans in ``src/repro/``) is
  catalogued in ``docs/OBSERVABILITY.md``, and the catalog names no
  metric or stage the code no longer records.

This module is the blocking payload of the CI ``docs`` job.
"""

import re
import pathlib

import pytest

from repro.cli import _build_parser

REPO = pathlib.Path(__file__).resolve().parent.parent
README = REPO / "README.md"
DOCS = sorted((REPO / "docs").glob("*.md"))
RESULTS_DIR = REPO / "benchmarks" / "results"

#: Performance-bench artifacts PERFORMANCE.md must cite (figure
#: reproductions under results/ are experiment outputs, not perf runs).
PERF_RESULT_FILES = (
    "serving.txt",
    "parallel_detect.txt",
    "incremental_series.txt",
    "archive_coldstart.txt",
    "serving_fleet.txt",
    "obs_overhead.txt",
    "watch_replay.txt",
    "scenario_grid.txt",
)


def _loadgen_options():
    """Long options of the ``benchmarks/loadgen.py`` entry point.

    Loaded by file path so the contract holds regardless of pytest's
    working directory (the benchmarks package is not on ``sys.path``
    under every invocation).
    """
    import importlib.util
    import sys

    spec = importlib.util.spec_from_file_location(
        "_docs_sync_loadgen", REPO / "benchmarks" / "loadgen.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Registered so the module's dataclasses can resolve their own
    # (string) annotations during class creation.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return [
        option
        for action in module._build_parser()._actions
        for option in action.option_strings
        if option.startswith("--")
    ]


def _subcommands():
    """{command: [long option strings]} for every documented parser.

    The ``repro`` subcommands come from the real argparse tree; the
    ``loadgen`` benchmark entry point is folded in as a pseudo-command
    so its documented options are held to the same two-way contract.
    """
    parser = _build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    table = {}
    for name, command in subparsers.choices.items():
        options = []
        for action in command._actions:
            for option in action.option_strings:
                if option.startswith("--"):
                    options.append(option)
        table[name] = options
    table["loadgen"] = _loadgen_options()
    return table


def _cli_reference_text():
    """README text from the CLI reference heading to the next heading."""
    text = README.read_text()
    match = re.search(r"^## CLI reference$(.*?)(?=^## )", text, re.M | re.S)
    assert match, "README.md lacks a '## CLI reference' section"
    return match.group(1)


def test_every_subcommand_documented():
    reference = _cli_reference_text()
    for subcommand in _subcommands():
        assert f"`{subcommand}" in reference or f" {subcommand} " in reference, (
            f"subcommand {subcommand!r} missing from the README CLI reference"
        )


def test_every_option_documented():
    reference = _cli_reference_text()
    missing = [
        f"{subcommand} {option}"
        for subcommand, options in _subcommands().items()
        for option in options
        if option != "--help" and option not in reference
    ]
    assert not missing, (
        "CLI options missing from the README CLI reference: "
        + ", ".join(missing)
    )


def test_readme_documents_no_unknown_options():
    """Long options named in the CLI reference must exist in the parser."""
    known = {
        option
        for options in _subcommands().values()
        for option in options
    } | {"--help"}
    documented = set(re.findall(r"(--[a-z][a-z0-9-]+)", _cli_reference_text()))
    unknown = documented - known
    assert not unknown, f"README documents unknown options: {sorted(unknown)}"


def test_performance_doc_citations_exist():
    text = (REPO / "docs" / "PERFORMANCE.md").read_text()
    cited = set(re.findall(r"results/([A-Za-z0-9_.]+\.txt)", text))
    assert cited, "docs/PERFORMANCE.md cites no results files"
    missing = [name for name in cited if not (RESULTS_DIR / name).exists()]
    assert not missing, (
        f"docs/PERFORMANCE.md cites nonexistent results files: {missing}"
    )


def test_perf_result_files_are_cited():
    text = (REPO / "docs" / "PERFORMANCE.md").read_text()
    for name in PERF_RESULT_FILES:
        assert (RESULTS_DIR / name).exists(), (
            f"expected benchmark artifact benchmarks/results/{name} is missing"
        )
        assert name in text, (
            f"benchmarks/results/{name} exists but docs/PERFORMANCE.md "
            f"never cites it"
        )


# -- observability catalog ---------------------------------------------------

OBSERVABILITY = REPO / "docs" / "OBSERVABILITY.md"
SRC = REPO / "src" / "repro"

#: Literal metric registrations — ``registry.counter("name")`` and
#: friends — plus the supervisor-injected ``fleet.*`` gauges, which are
#: written as plain snapshot-dict keys (``gauges["fleet.workers"]``).
_METRIC_LITERAL = re.compile(
    r'(?:\.(?:counter|gauge|histogram)\(|gauges\[)\s*\n?\s*"([a-z0-9_.]+)"'
)

#: Literal stage names: ``trace("stage")`` spans and
#: ``record_stage("stage", ...)`` calls.
_STAGE_LITERAL = re.compile(
    r'(?:\btrace|\brecord_stage)\(\s*\n?\s*"([a-z0-9_.]+)"'
)

#: A catalog entry in OBSERVABILITY.md: a markdown table row whose
#: first cell is a backticked dotted name.  Other tables in the doc
#: (endpoints, CLI) never lead with a bare dotted identifier.
_CATALOG_ROW = re.compile(r"^\|\s*`([a-z0-9_]+\.[a-z0-9_.]+)`", re.M)


def _names_recorded_in_source() -> set[str]:
    """Every metric and stage name literal in ``src/repro/``.

    The dot requirement filters generic docstring examples; every real
    name is namespaced (``serve.lookups``, ``step3.accumulate``).
    """
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        names.update(_METRIC_LITERAL.findall(text))
        names.update(_STAGE_LITERAL.findall(text))
    return {name for name in names if "." in name}


def test_observability_catalog_is_complete():
    """Every recorded metric/stage name appears in the doc's tables."""
    catalogued = set(_CATALOG_ROW.findall(OBSERVABILITY.read_text()))
    assert catalogued, "docs/OBSERVABILITY.md has no catalog rows"
    missing = sorted(_names_recorded_in_source() - catalogued)
    assert not missing, (
        "metric/stage names recorded in src/repro but absent from the "
        f"docs/OBSERVABILITY.md catalog: {missing}"
    )


def test_observability_catalog_has_no_ghosts():
    """The doc never catalogs a name the code no longer records."""
    catalogued = set(_CATALOG_ROW.findall(OBSERVABILITY.read_text()))
    ghosts = sorted(catalogued - _names_recorded_in_source())
    assert not ghosts, (
        "docs/OBSERVABILITY.md catalogs metric/stage names no longer "
        f"recorded anywhere in src/repro: {ghosts}"
    )


# -- relative links and anchors ----------------------------------------------

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _heading_slugs(path: pathlib.Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in *path*."""
    slugs = set()
    in_code = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code or not line.startswith("#"):
            continue
        title = line.lstrip("#").strip()
        title = re.sub(r"`([^`]*)`", r"\1", title)
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        slug = re.sub(r"\s", "-", slug)
        slugs.add(slug)
    return slugs


def _links(path: pathlib.Path):
    in_code = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        yield from _LINK.findall(line)


@pytest.mark.parametrize(
    "document", [README] + DOCS, ids=lambda p: p.name
)
def test_relative_links_resolve(document):
    problems = []
    for target in _links(document):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        destination = (
            document if not path_part else (document.parent / path_part)
        )
        try:
            resolved = destination.resolve()
        except OSError:
            problems.append(f"{target}: unresolvable")
            continue
        if not resolved.exists():
            problems.append(f"{target}: no such file")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in _heading_slugs(resolved):
                problems.append(f"{target}: no heading for #{anchor}")
    assert not problems, (
        f"{document.name} has broken links: " + "; ".join(problems)
    )
