"""The quality-regression gate: scripted scenarios must meet floors.

Every scripted event scenario (:data:`repro.synth.events.EVENT_SCENARIOS`)
is driven through ``detect_series`` and scored *exactly* against the
generator's ground-truth ledger.  The floors below are the contract a
future PR must not silently degrade — the grid runs for all three
Step 3-4 engines under every importable kernel, and the suite is the
blocking payload of the CI ``scenario-quality`` job (both the stock and
``REPRO_KERNEL=python`` legs).

Floor rationale: clean churn scenarios (rollout, renumber, rotation,
orgchurn) are exactly detectable, so anything below ~perfect is a
detection regression; the aliased-cluster scenarios *design in* tied
false positives (the Gasser-style trap prefix survives Step-4 ties), so
their raw precision floor is lower — but every false positive must be a
trap hit, which is what ``non_trap_precision`` isolates.
"""

import pytest

from conftest import as_mapping

from repro.analysis.pipeline import detect_series
from repro.analysis.quality import score_series
from repro.core.kernels import available_kernel_names, use_kernel
from repro.synth.events import EVENT_SCENARIOS, build_event_universe

ENGINES = ("reference", "columnar", "sharded")
KERNELS = available_kernel_names()

#: scenario → (precision floor, recall floor, non-trap precision floor).
FLOORS = {
    "rollout": (0.95, 0.95, 0.99),
    "renumber": (0.99, 0.99, 0.99),
    "rotation": (0.99, 0.95, 0.99),
    "aliased": (0.85, 0.99, 0.99),
    "orgchurn": (0.99, 0.99, 0.99),
    "mixed": (0.90, 0.95, 0.99),
}


def test_every_scenario_has_a_floor():
    """A new scripted scenario cannot ship ungated."""
    assert set(FLOORS) == set(EVENT_SCENARIOS)


def _score(name, substrate, incremental=True):
    universe = build_event_universe(name)
    results = detect_series(
        universe, universe.dates, substrate=substrate, incremental=incremental
    )
    return score_series(results, universe.ledger, scenario=name)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("substrate", ENGINES)
@pytest.mark.parametrize("scenario", sorted(EVENT_SCENARIOS))
def test_scenario_meets_floors(scenario, substrate, kernel):
    precision_floor, recall_floor, non_trap_floor = FLOORS[scenario]
    with use_kernel(kernel):
        score = _score(scenario, substrate)
    assert score.precision >= precision_floor, (
        f"{scenario}/{substrate}/{kernel}: precision "
        f"{score.precision:.3f} below floor {precision_floor}"
    )
    assert score.recall >= recall_floor, (
        f"{scenario}/{substrate}/{kernel}: recall "
        f"{score.recall:.3f} below floor {recall_floor}"
    )
    assert score.non_trap_precision >= non_trap_floor, (
        f"{scenario}/{substrate}/{kernel}: non-trap precision "
        f"{score.non_trap_precision:.3f} below floor {non_trap_floor}"
    )


@pytest.mark.parametrize("scenario", sorted(EVENT_SCENARIOS))
def test_truth_changes_reflected_without_lag(scenario):
    """The exact pipeline must reflect every truth change the same date
    it lands — churn-lag > 0 means delta handling went stale."""
    score = _score(scenario, "columnar")
    assert score.churn.unreflected == 0
    assert score.churn.max_lag in (None, 0)


def test_aliased_false_positives_are_all_trap_hits():
    """The designed trap accounts for *every* aliased-scenario FP —
    any other false positive is a real detection bug."""
    score = _score("aliased", "columnar")
    false_positives = sum(s.false_positives for s in score.dates)
    trap_positives = sum(s.trap_positives for s in score.dates)
    assert false_positives > 0, "the trap should fire at all"
    assert false_positives == trap_positives
    assert score.non_trap_precision == 1.0


@pytest.mark.parametrize("substrate", ENGINES)
def test_incremental_matches_full_on_event_series(substrate):
    """The event series exercises the delta path (constant annotator
    signature) and must stay bit-identical to full recomputation."""
    universe = build_event_universe("mixed")
    full = detect_series(
        universe, universe.dates, substrate=substrate, incremental=False
    )
    fresh = build_event_universe("mixed")
    incremental = detect_series(
        fresh, fresh.dates, substrate=substrate, incremental=True
    )
    assert [d for d, _ in full] == [d for d, _ in incremental]
    for (_, a), (_, b) in zip(full, incremental):
        assert as_mapping(a) == as_mapping(b)
