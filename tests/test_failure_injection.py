"""Failure injection: the pipeline must degrade gracefully, not crash."""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.detection import detect_siblings, detect_with_index
from repro.core.longitudinal import classify_changes
from repro.core.siblings import SiblingSet
from repro.core.sensitivity import sweep_thresholds
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.prefix import Prefix

DATE = datetime.date(2024, 9, 11)


def p(text):
    return Prefix.parse(text)


def addr(text):
    return Prefix.parse(text).value


class TestEmptyAndDegenerateInputs:
    def test_empty_snapshot(self):
        annotator = PrefixAnnotator(Rib(), missing_fraction=0.0)
        siblings = detect_siblings(DnsSnapshot(DATE), annotator)
        assert len(siblings) == 0
        assert siblings.perfect_match_share == 0.0
        assert siblings.mean_similarity == 0.0
        assert siblings.std_similarity == 0.0

    def test_single_stack_only_snapshot(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 1)
        snapshot = DnsSnapshot(
            DATE, [DomainObservation("v4.example.com", (addr("5.1.0.1"),), ())]
        )
        annotator = PrefixAnnotator(rib, missing_fraction=0.0)
        assert len(detect_siblings(snapshot, annotator)) == 0

    def test_fully_unrouted_world(self):
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation(
                    "d.example.com", (addr("5.1.0.1"),), (addr("2600::1"),)
                )
            ],
        )
        annotator = PrefixAnnotator(Rib(), missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        assert len(siblings) == 0
        assert index.dropped_domains == 1

    def test_total_annotation_gap_with_working_fallback(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 1)
        rib.announce(p("2600:100::/48"), 1)
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation(
                    "d.example.com", (addr("5.1.0.1"),), (addr("2600:100::1"),)
                )
            ],
        )
        # Primary annotations 100% missing: everything flows through the
        # Routeviews fallback and still works.
        annotator = PrefixAnnotator(rib, rib, missing_fraction=1.0)
        siblings = detect_siblings(snapshot, annotator)
        assert len(siblings) == 1
        assert annotator.fallback_hits == 2

    def test_tuner_on_empty_sibling_set(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 1)
        annotator = PrefixAnnotator(rib, missing_fraction=0.0)
        _, index = detect_with_index(DnsSnapshot(DATE), annotator)
        tuner = SpTunerMS(index, DEFAULT_CONFIG)
        tuned = tuner.tune_all(SiblingSet(DATE))
        assert len(tuned) == 0

    def test_tuner_pair_with_no_addresses_in_tries(self):
        annotator = PrefixAnnotator(Rib(), missing_fraction=0.0)
        _, index = detect_with_index(DnsSnapshot(DATE), annotator)
        tuner = SpTunerMS(index, DEFAULT_CONFIG)
        result = tuner.tune_pair(p("5.1.0.0/24"), p("2600:100::/48"))
        assert result == []

    def test_sensitivity_sweep_on_empty(self):
        annotator = PrefixAnnotator(Rib(), missing_fraction=0.0)
        _, index = detect_with_index(DnsSnapshot(DATE), annotator)
        cells = sweep_thresholds(
            SiblingSet(DATE), index, v4_thresholds=(24,), v6_thresholds=(48,)
        )
        assert cells[0].pair_count == 0
        assert cells[0].mean == 0.0

    def test_change_classification_of_disjoint_sets(self):
        from repro.core.siblings import SiblingPair

        pair_a = SiblingPair(
            p("5.1.0.0/24"), p("2600:100::/48"), 1.0, frozenset({"a"}), 1, 1
        )
        pair_b = SiblingPair(
            p("5.2.0.0/24"), p("2600:200::/48"), 1.0, frozenset({"b"}), 1, 1
        )
        report = classify_changes(
            SiblingSet(DATE, [pair_a]), SiblingSet(DATE, [pair_b])
        )
        assert len(report.new) == 1 and len(report.gone) == 1


class TestAdversarialZoneData:
    def test_domain_with_hundreds_of_addresses(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/16"), 1)
        rib.announce(p("2600:100::/32"), 1)
        v4 = tuple(addr("5.1.0.0") + i for i in range(1, 300))
        v6 = tuple(addr("2600:100::") + i for i in range(1, 300))
        snapshot = DnsSnapshot(DATE, [DomainObservation("big.example.com", v4, v6)])
        annotator = PrefixAnnotator(rib, missing_fraction=0.0)
        siblings, index = detect_with_index(snapshot, annotator)
        assert len(siblings) == 1
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        # All addresses live in one prefix pair; tuning must not lose it.
        assert len(tuned) >= 1
        assert {d for q in tuned for d in q.shared_domains} == {"big.example.com"}

    def test_many_prefixes_single_domain_cross_product(self):
        # The site24x7 pattern at small scale: one domain in N x M prefixes.
        rib = Rib()
        observations_v4 = []
        observations_v6 = []
        for i in range(10):
            prefix = Prefix.from_address(4, (5 << 24) | (i << 8), 24)
            rib.announce(prefix, 100 + i)
            observations_v4.append(prefix.first_address + 1)
        for i in range(4):
            prefix = Prefix.from_address(6, (0x2600 << 112) | (i << 80), 48)
            rib.announce(prefix, 200 + i)
            observations_v6.append(prefix.first_address + 1)
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation(
                    "probe.example.com",
                    tuple(observations_v4),
                    tuple(observations_v6),
                )
            ],
        )
        annotator = PrefixAnnotator(rib, missing_fraction=0.0)
        siblings = detect_siblings(snapshot, annotator)
        # Every (v4, v6) prefix combination ties at J=1: full cross product.
        assert len(siblings) == 40
        assert siblings.perfect_match_share == 1.0

    def test_zero_similarity_pairs_never_materialize(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 1)
        rib.announce(p("5.2.0.0/24"), 1)
        rib.announce(p("2600:100::/48"), 1)
        rib.announce(p("2600:200::/48"), 1)
        snapshot = DnsSnapshot(
            DATE,
            [
                DomainObservation(
                    "a.example.com", (addr("5.1.0.1"),), (addr("2600:100::1"),)
                ),
                DomainObservation(
                    "b.example.com", (addr("5.2.0.1"),), (addr("2600:200::1"),)
                ),
            ],
        )
        annotator = PrefixAnnotator(rib, missing_fraction=0.0)
        siblings = detect_siblings(snapshot, annotator)
        keys = {(s.v4_prefix, s.v6_prefix) for s in siblings}
        assert (p("5.1.0.0/24"), p("2600:200::/48")) not in keys
        assert (p("5.2.0.0/24"), p("2600:100::/48")) not in keys
