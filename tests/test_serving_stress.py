"""Concurrency stress for the query service across snapshot hot-swaps.

:class:`SiblingQueryService` promises two things under concurrency:

* a :meth:`batch` response is answered entirely against the generation
  current at entry — a concurrent :meth:`swap` can never mix two
  snapshots within one response;
* the LRU answer cache is generation-keyed and cleared inside the swap
  critical section, so a cached answer from an old index can never be
  served as if it belonged to a newer one.

These tests make every generation *distinguishable* (the published
jaccard value and the snapshot date both encode the generation number)
and then hammer the service from client threads while a publisher
thread swaps through dozens of generations.  Any mixed batch or stale
cache hit shows up as a value that contradicts its own row's snapshot
field.
"""

import datetime
import json
import re
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.nettypes.prefix import Prefix
from repro.obs.metrics import MetricsRegistry
from repro.publish import PublishedPair
from repro.serving.http import make_server
from repro.serving.index import SiblingLookupIndex
from repro.serving.service import SiblingQueryService

V4 = Prefix.parse("192.0.2.0/24")
V6 = Prefix.parse("2001:db8::/32")
BASE_DATE = datetime.date(2024, 1, 1)
GENERATIONS = 40

#: Hit-heavy with repeats (cache exercised) plus guaranteed misses.
QUERIES = [
    "192.0.2.7",
    "192.0.2.9",
    "2001:db8::1",
    "203.0.113.5",
    "192.0.2.7",
    "2001:db8:dead::beef",
    "198.51.100.1",
    "192.0.2.200",
] * 3


def _jaccard_of(generation: int) -> float:
    return round(0.001 * generation, 6)


def _snapshot_of(generation: int) -> datetime.date:
    return BASE_DATE + datetime.timedelta(days=generation)


def _make_index(generation: int) -> SiblingLookupIndex:
    """One pair whose jaccard and snapshot date encode *generation*."""
    pair = PublishedPair(
        v4_prefix=V4,
        v6_prefix=V6,
        jaccard=_jaccard_of(generation),
        shared_domains=generation + 1,
        v4_domains=generation + 2,
        v6_domains=generation + 3,
        same_org=None,
        rov_status=None,
    )
    return SiblingLookupIndex.from_pairs([pair], _snapshot_of(generation))


#: snapshot isoformat → the jaccard every answer under it must carry.
EXPECTED = {
    _snapshot_of(generation).isoformat(): _jaccard_of(generation)
    for generation in range(GENERATIONS + 1)
}


def _check_batch(results: list[dict], errors: list[str]) -> None:
    """One batch must be internally consistent with a single generation."""
    snapshots = {answer.get("snapshot") for answer in results}
    if len(snapshots) != 1:
        errors.append(f"batch mixed generations: {sorted(snapshots)}")
        return
    snapshot = snapshots.pop()
    if snapshot not in EXPECTED:
        errors.append(f"unknown snapshot {snapshot!r}")
        return
    expected_jaccard = EXPECTED[snapshot]
    for answer in results:
        if answer["found"]:
            jaccards = {row["jaccard"] for row in answer["pairs"]}
            if jaccards != {expected_jaccard}:
                errors.append(
                    f"answer under snapshot {snapshot} carries jaccard "
                    f"{sorted(jaccards)}, expected {expected_jaccard} "
                    f"(stale cache or mixed swap)"
                )


def test_batches_never_mix_generations_under_swap_storm():
    """Threaded clients vs a publisher swapping 40 generations."""
    service = SiblingQueryService(_make_index(0), cache_size=64)
    errors: list[str] = []
    batches_done = [0] * 4
    publisher_done = threading.Event()

    def client(slot: int) -> None:
        while not publisher_done.is_set():
            _check_batch(service.batch(QUERIES), errors)
            batches_done[slot] += 1
        # One final batch against the settled last generation.
        _check_batch(service.batch(QUERIES), errors)
        batches_done[slot] += 1

    def publisher() -> None:
        for generation in range(1, GENERATIONS + 1):
            service.swap(_make_index(generation))
            # Yield so client batches actually interleave with swaps.
            time.sleep(0.002)
        publisher_done.set()

    clients = [
        threading.Thread(target=client, args=(slot,)) for slot in range(4)
    ]
    for thread in clients:
        thread.start()
    publisher_thread = threading.Thread(target=publisher)
    publisher_thread.start()
    publisher_thread.join(timeout=60)
    for thread in clients:
        thread.join(timeout=60)
    assert not publisher_thread.is_alive() and not any(
        thread.is_alive() for thread in clients
    ), "stress threads did not finish"

    assert not errors, errors[:5]
    assert all(done >= 1 for done in batches_done)
    assert service.generation == GENERATIONS + 1
    # The settled service answers only from the final generation.
    final = service.batch(QUERIES)
    assert {answer["snapshot"] for answer in final} == {
        _snapshot_of(GENERATIONS).isoformat()
    }


def test_cache_never_serves_stale_generation():
    """A hot cache entry must die with the generation that filled it."""
    service = SiblingQueryService(_make_index(0), cache_size=64)
    first = service.lookup("192.0.2.7")
    again = service.lookup("192.0.2.7")
    assert first == again
    stats = service.snapshot_info()["cache"]
    assert stats["hits"] >= 1, "second lookup should have hit the cache"

    for generation in range(1, 6):
        service.swap(_make_index(generation))
        answer = service.lookup("192.0.2.7")
        assert answer["snapshot"] == _snapshot_of(generation).isoformat()
        assert {row["jaccard"] for row in answer["pairs"]} == {
            _jaccard_of(generation)
        }


def test_http_batches_never_mix_generations_under_swap_storm():
    """The same storm through the HTTP surface, keep-alive clients.

    Uses the server's ``start()``/``close()`` lifecycle API (context
    manager), so the storm tears down cleanly instead of leaking a
    daemon serve thread.  Each client holds one persistent HTTP/1.1
    connection — the swap-consistency guarantee must hold across
    responses multiplexed onto reused connections too.
    """
    service = SiblingQueryService(_make_index(0), cache_size=64)
    errors: list[str] = []
    batches_done = [0] * 3
    publisher_done = threading.Event()
    body = json.dumps({"queries": QUERIES})

    with make_server(service, port=0) as server:
        server.start()
        host, port = server.server_address[:2]

        def client(slot: int) -> None:
            connection = HTTPConnection(host, port, timeout=10)
            try:
                while True:
                    last = publisher_done.is_set()
                    connection.request(
                        "POST",
                        "/v1/batch",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    payload = json.loads(connection.getresponse().read())
                    _check_batch(payload["results"], errors)
                    batches_done[slot] += 1
                    if last:
                        # One batch against the settled last generation.
                        break
            finally:
                connection.close()

        def publisher() -> None:
            for generation in range(1, GENERATIONS + 1):
                service.swap(_make_index(generation))
                time.sleep(0.002)
            publisher_done.set()

        clients = [
            threading.Thread(target=client, args=(slot,)) for slot in range(3)
        ]
        for thread in clients:
            thread.start()
        publisher_thread = threading.Thread(target=publisher)
        publisher_thread.start()
        publisher_thread.join(timeout=60)
        for thread in clients:
            thread.join(timeout=60)
        assert not publisher_thread.is_alive() and not any(
            thread.is_alive() for thread in clients
        ), "stress threads did not finish"

    assert not errors, errors[:5]
    assert all(done >= 1 for done in batches_done)
    assert service.generation == GENERATIONS + 1


@pytest.mark.obs
def test_metrics_scrape_never_blocks_swap_storm():
    """A ``/v1/metrics`` scraper hammering the server through a
    40-generation swap storm: every scrape answers 200 with coherent
    Prometheus text, the lookup counter is monotonic across scrapes,
    and the storm finishes on schedule — the scrape path holds no lock
    that a swap or a lookup needs (it snapshots, then renders from the
    plain dict).

    The service gets its own registry so counters from the other storm
    tests in this file (which share the process-default registry) can't
    bleed into the coherence assertions.
    """
    service = SiblingQueryService(
        _make_index(0), cache_size=64, registry=MetricsRegistry()
    )
    errors: list[str] = []
    scrape_counts: list[int] = []
    publisher_done = threading.Event()

    with make_server(service, port=0) as server:
        server.start()
        host, port = server.server_address[:2]

        def lookup_client() -> None:
            connection = HTTPConnection(host, port, timeout=10)
            try:
                while True:
                    last = publisher_done.is_set()
                    connection.request(
                        "GET", "/v1/lookup?ip=" + QUERIES[0]
                    )
                    connection.getresponse().read()
                    if last:
                        break
            finally:
                connection.close()

        def scraper() -> None:
            connection = HTTPConnection(host, port, timeout=10)
            try:
                while True:
                    last = publisher_done.is_set()
                    connection.request("GET", "/v1/metrics")
                    response = connection.getresponse()
                    text = response.read().decode("utf-8")
                    if response.status != 200:
                        errors.append(f"scrape got {response.status}")
                    match = re.search(
                        r"^repro_serve_lookups_total (\d+)$", text, re.M
                    )
                    if match is None:
                        errors.append("scrape lacks the lookup counter")
                    else:
                        scrape_counts.append(int(match.group(1)))
                    swaps = re.search(
                        r"^repro_serve_swaps_total (\d+)$", text, re.M
                    )
                    if swaps is None or int(swaps.group(1)) > GENERATIONS:
                        errors.append(f"incoherent swap counter: {swaps}")
                    if last:
                        break
            finally:
                connection.close()

        def publisher() -> None:
            for generation in range(1, GENERATIONS + 1):
                service.swap(_make_index(generation))
                time.sleep(0.002)
            publisher_done.set()

        threads = [
            threading.Thread(target=lookup_client),
            threading.Thread(target=scraper),
        ]
        for thread in threads:
            thread.start()
        started = time.monotonic()
        publisher_thread = threading.Thread(target=publisher)
        publisher_thread.start()
        publisher_thread.join(timeout=60)
        storm_elapsed = time.monotonic() - started
        for thread in threads:
            thread.join(timeout=60)
        assert not publisher_thread.is_alive() and not any(
            thread.is_alive() for thread in threads
        ), "scrape storm threads did not finish"

    assert not errors, errors[:5]
    assert len(scrape_counts) >= 5, "scraper barely ran"
    assert scrape_counts == sorted(scrape_counts), (
        "lookup counter went backwards across scrapes"
    )
    # The storm sleeps 2ms x GENERATIONS between swaps; anything wildly
    # above that means a scrape held the swap path up.
    assert storm_elapsed < 30, (
        f"swap storm took {storm_elapsed:.1f}s with a concurrent scraper"
    )
    assert service.generation == GENERATIONS + 1


def test_swap_returns_previous_and_bumps_generation_once():
    """swap() is atomic bookkeeping: previous index back, +1 generation."""
    index_a = _make_index(1)
    index_b = _make_index(2)
    service = SiblingQueryService(index_a)
    generation_before = service.generation
    previous = service.swap(index_b)
    assert previous is index_a
    assert service.generation == generation_before + 1
    assert service.index is index_b
