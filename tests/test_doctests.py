"""Run the doctest examples embedded in public-API docstrings."""

import doctest

import pytest

import repro.dns.zone
import repro.nettypes.prefix
import repro.nettypes.sets
import repro.nettypes.trie
import repro.obs.metrics
import repro.obs.tracing
import repro.serving.cache
import repro.serving.index
import repro.serving.service
import repro.storage.archive
import repro.storage.format

MODULES = (
    repro.nettypes.prefix,
    repro.nettypes.trie,
    repro.nettypes.sets,
    repro.dns.zone,
    repro.obs.metrics,
    repro.obs.tracing,
    repro.serving.cache,
    repro.serving.index,
    repro.serving.service,
    repro.storage.format,
    repro.storage.archive,
)


@pytest.mark.parametrize("module", MODULES, ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
