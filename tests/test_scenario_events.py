"""The scripted event engine: exact truth, determinism, and the daemon.

Three layers of contract:

* **Event semantics** — each scripted event (rollout waves, renumber
  waves, privacy rotation with blackout windows, the aliased-prefix
  trap, org merges/splits) produces exactly the snapshots and ledger
  entries its docstring promises, and two engines built from the same
  script are bit-identical (private address plan, constant RIB).
* **Property tests** — for *random* event scripts, incremental
  ``detect_series`` stays pair-identical to full recomputation, and the
  ledger invariants hold: no pair is both added and retracted by the
  same change, visible truth is a subset of full truth, and renumbering
  never changes org-level truth.
* **The watch daemon** — an event-scripted directory feed with rotation
  events landing mid-watch: archive generations, ``/v1/status``, and
  the ``same_pairs`` swap-skip count all match the scripted timeline.
"""

import json
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import as_mapping

from repro.analysis.pipeline import detect_series
from repro.analysis.quality import score_series
from repro.analysis.watch import (
    SnapshotDirectorySource,
    SnapshotWatcher,
    write_snapshot_file,
)
from repro.obs.metrics import MetricsRegistry
from repro.serving.http import make_server
from repro.serving.service import SiblingQueryService
from repro.synth.events import (
    AliasedCluster,
    DualStackRollout,
    EventScript,
    EventUniverse,
    OrgMerge,
    OrgSplit,
    PrefixRotation,
    RenumberWave,
    build_event_universe,
    event_scenario,
)
from repro.synth.scenarios import scenario
from repro.synth.topology import build_population

#: One shared population — the engine only reads org ids/ASNs from it,
#: and a private AddressPlan per engine keeps instances independent.
POPULATION = build_population(scenario("tiny"))


def _universe(events, **kwargs):
    defaults = dict(n_dates=6, n_deployments=8, domains_per_deployment=2)
    defaults.update(kwargs)
    script = EventScript(name="t", events=tuple(events), **defaults)
    return EventUniverse(script, base=POPULATION)


def _detected_keys(universe):
    return {
        date: {pair.key for pair in siblings}
        for date, siblings in detect_series(
            universe, universe.dates, incremental=True
        )
    }


class TestEventSemantics:
    def test_engine_is_deterministic(self):
        script = event_scenario("mixed")
        a = EventUniverse(script, base=POPULATION)
        b = EventUniverse(script, base=POPULATION)
        for date in a.dates:
            left = {
                o.domain: (o.v4_addresses, o.v6_addresses)
                for o in a.snapshot_at(date).observations()
            }
            right = {
                o.domain: (o.v4_addresses, o.v6_addresses)
                for o in b.snapshot_at(date).observations()
            }
            assert left == right
            assert a.ledger.keys_at(date) == b.ledger.keys_at(date)

    def test_annotator_signature_is_constant(self):
        """The whole point of the up-front RIB: the incremental path is
        never gated off by a signature change."""
        universe = build_event_universe("mixed")
        signatures = {
            universe.annotator_at(date).signature() for date in universe.dates
        }
        assert len(signatures) == 1

    def test_rollout_waves_grow_visible_truth(self):
        universe = _universe(
            [DualStackRollout(waves=3, start_index=1, interval=1)]
        )
        visible = [
            len(universe.ledger.visible_truth_at(date))
            for date in universe.dates
        ]
        assert visible[0] == 0
        assert visible == sorted(visible)
        assert visible[-1] == 8
        # Full (org-level) truth is there from date 0 — the v6 block is
        # provisioned, just not yet detectable.
        assert len(universe.ledger.truth_at(universe.dates[0])) == 8

    def test_renumber_moves_pairs_but_not_org_truth(self):
        universe = _universe([RenumberWave(at_index=3, fraction=1.0)])
        dates = universe.dates
        before = universe.ledger.keys_at(dates[2])
        after = universe.ledger.keys_at(dates[3])
        assert before.isdisjoint(after)  # both families moved
        org_views = {universe.ledger.org_truth_at(d) for d in dates}
        assert len(org_views) == 1
        # Detection tracks the move on the same date.
        detected = _detected_keys(universe)
        assert detected[dates[2]] == before
        assert detected[dates[3]] == after

    def test_rotation_cycles_v6_only(self):
        universe = _universe(
            [PrefixRotation(period=2, jitter=0, fraction=1.0, ring=3)]
        )
        dates = universe.dates
        v4_sides = {
            frozenset(k[0] for k in universe.ledger.keys_at(d)) for d in dates
        }
        assert len(v4_sides) == 1  # v4 never rotates
        v6_of_first = [
            sorted(universe.ledger.truth_at(d), key=lambda p: p.deployment_id)[
                0
            ].v6_prefix
            for d in dates
        ]
        # period=2 over 6 dates: block changes at t=2 and t=4.
        assert v6_of_first[0] == v6_of_first[1]
        assert v6_of_first[2] == v6_of_first[3] != v6_of_first[0]
        assert v6_of_first[4] == v6_of_first[5] != v6_of_first[2]

    def test_rotation_blackout_empties_the_snapshot(self):
        """fraction=1.0 blackout: every deployment drops out on rotation
        dates — an *empty-but-present* snapshot, not a missing date."""
        universe = _universe(
            [PrefixRotation(period=2, jitter=0, fraction=1.0, ring=3,
                            blackout=True)]
        )
        dates = universe.dates
        series = universe.series()
        assert series.at(dates[2]).is_empty
        assert series.empty_dates() == [dates[2], dates[4]]
        assert not universe.ledger.visible_truth_at(dates[2])
        # Truth persists organizationally through the blackout.
        assert len(universe.ledger.truth_at(dates[2])) == 8
        # Recall is never charged for the blackout window.
        results = detect_series(universe, dates, incremental=True)
        score = score_series(results, universe.ledger)
        assert score.recall == 1.0 and score.precision == 1.0

    def test_aliased_cluster_is_registered_trap(self):
        universe = _universe([AliasedCluster(at_index=1, fraction=0.5)])
        trap = universe.aliased_prefix
        assert trap is not None
        assert universe.ledger.is_trap(trap)
        results = detect_series(universe, universe.dates, incremental=True)
        score = score_series(results, universe.ledger)
        fp = sum(s.false_positives for s in score.dates)
        trap_fp = sum(s.trap_positives for s in score.dates)
        assert fp > 0 and fp == trap_fp
        assert score.recall == 1.0

    def test_hijack_mode_makes_truth_invisible(self):
        universe = _universe(
            [AliasedCluster(at_index=2, fraction=1.0, mode="hijack")]
        )
        dates = universe.dates
        assert len(universe.ledger.visible_truth_at(dates[1])) == 8
        assert not universe.ledger.visible_truth_at(dates[2])
        results = detect_series(universe, dates, incremental=True)
        score = score_series(results, universe.ledger)
        # Everything detected after the hijack is a trap hit; recall is
        # not charged (the true pairs are invisible truth).
        assert score.recall == 1.0
        assert score.non_trap_precision == 1.0

    def test_org_merge_and_split_touch_attribution_only(self):
        universe = _universe(
            [OrgMerge(at_index=2, fraction=1.0), OrgSplit(at_index=4,
                                                          fraction=1.0)]
        )
        dates = universe.dates
        keys = {universe.ledger.keys_at(d) for d in dates}
        assert len(keys) == 1  # pair truth never moves
        merged = {org for org, _ in universe.ledger.org_truth_at(dates[2])}
        assert len(merged) == 1
        split = {org for org, _ in universe.ledger.org_truth_at(dates[4])}
        assert len(split) == 8  # every deployment spun out

    def test_missing_snapshot_date_raises_lookup_error(self):
        universe = _universe([])
        import datetime

        with pytest.raises(LookupError):
            universe.snapshot_at(datetime.date(1999, 1, 1))

    def test_scaled_script_multiplies_cast(self):
        script = event_scenario("rollout").scaled(3)
        assert script.n_deployments == 72
        with pytest.raises(ValueError):
            script.scaled(0)


# -- property tests -----------------------------------------------------------

_EVENTS = st.one_of(
    st.builds(
        DualStackRollout,
        waves=st.integers(1, 3),
        start_index=st.integers(1, 3),
        interval=st.integers(1, 2),
        fraction=st.sampled_from([0.5, 1.0]),
    ),
    st.builds(
        RenumberWave,
        at_index=st.integers(1, 4),
        fraction=st.sampled_from([0.4, 1.0]),
        families=st.sampled_from([(4,), (6,), (4, 6)]),
    ),
    st.builds(
        PrefixRotation,
        period=st.integers(1, 3),
        jitter=st.integers(0, 2),
        fraction=st.sampled_from([0.4, 1.0]),
        ring=st.integers(2, 3),
        blackout=st.booleans(),
    ),
    st.builds(
        AliasedCluster,
        at_index=st.integers(1, 3),
        fraction=st.sampled_from([0.3, 0.6]),
        mode=st.sampled_from(["additive", "hijack"]),
    ),
    st.builds(OrgMerge, at_index=st.integers(1, 4)),
    st.builds(OrgSplit, at_index=st.integers(1, 4)),
)


@st.composite
def _scripts(draw):
    events = draw(st.lists(_EVENTS, max_size=3))
    # The engine allows at most one aliased cluster per script.
    aliased = [e for e in events if isinstance(e, AliasedCluster)]
    for extra in aliased[1:]:
        events.remove(extra)
    return EventScript(
        name="prop",
        events=tuple(events),
        n_dates=draw(st.integers(3, 6)),
        n_deployments=draw(st.integers(4, 9)),
        domains_per_deployment=draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 2**16)),
    )


class TestScriptProperties:
    @settings(max_examples=25)
    @given(script=_scripts())
    def test_incremental_matches_full_recompute(self, script):
        universe = EventUniverse(script, base=POPULATION)
        full = detect_series(universe, universe.dates, incremental=False)
        fresh = EventUniverse(script, base=POPULATION)
        incremental = detect_series(fresh, fresh.dates, incremental=True)
        assert [d for d, _ in full] == [d for d, _ in incremental]
        for (_, a), (_, b) in zip(full, incremental):
            assert as_mapping(a) == as_mapping(b)

    @settings(max_examples=50)
    @given(script=_scripts())
    def test_ledger_invariants(self, script):
        universe = EventUniverse(script, base=POPULATION)
        ledger = universe.ledger
        for change in ledger.changes():
            assert not (change.added & change.retracted), (
                "a pair cannot be both added and retracted by one change"
            )
        for date in universe.dates:
            truth_keys = ledger.keys_at(date)
            assert ledger.visible_keys_at(date) <= truth_keys
            # One truth relation per deployment per date.
            assert len(ledger.truth_at(date)) == script.n_deployments
        if not any(
            isinstance(e, (OrgMerge, OrgSplit)) for e in script.events
        ):
            # Renumbering/rotation move networks, never org truth.
            views = {ledger.org_truth_at(d) for d in universe.dates}
            assert len(views) == 1


# -- the watch daemon on an event-scripted feed -------------------------------

class TestEventScriptedWatch:
    #: period=2, jitter=0, fraction=1.0: every deployment rotates at
    #: t=2 and t=4; the odd dates repeat the previous pairs exactly, so
    #: the watcher must skip those hot-swaps.
    SCRIPT = EventScript(
        name="watchrot",
        events=(PrefixRotation(period=2, jitter=0, fraction=1.0, ring=3),),
        n_dates=6,
        n_deployments=6,
        domains_per_deployment=2,
    )

    def _expected(self, universe):
        fresh = EventUniverse(self.SCRIPT, base=POPULATION)
        return detect_series(fresh, fresh.dates, incremental=True)

    def test_rotation_mid_watch_matches_scripted_timeline(self, tmp_path):
        universe = EventUniverse(self.SCRIPT, base=POPULATION)
        dates = universe.dates
        feed = tmp_path / "feed"
        feed.mkdir()
        archive = tmp_path / "events.sparch"
        registry = MetricsRegistry()
        service = SiblingQueryService()
        watcher = SnapshotWatcher(
            SnapshotDirectorySource(feed),
            universe.annotator_at,
            archive,
            service=service,
            registry=registry,
        )
        # Phase 1: the pre-rotation prefix of the series.
        for date in dates[:2]:
            write_snapshot_file(universe.snapshot_at(date), feed)
        assert watcher.run(once=True) == 2
        # t=1 repeats t=0's pairs (no rotation yet): one skipped swap.
        assert registry.counter("watch.swaps_skipped").value == 1
        assert service.generation == 1

        # Phase 2: rotation events land mid-watch.
        for date in dates[2:]:
            write_snapshot_file(universe.snapshot_at(date), feed)
        assert watcher.run(once=True) == 4
        # Scripted timeline: swaps at t=2 and t=4 (rotations), skips at
        # t=1, t=3, t=5 — three skipped of six generations.
        assert registry.counter("watch.swaps_skipped").value == 3
        assert registry.counter("watch.generations").value == 6
        assert service.generation == 3  # t0 + two rotations

        # The archive holds every generation, bit-equal to the batch
        # incremental pipeline over the same script.
        from repro.storage import substrate_io
        from repro.storage.archive import ArchiveReader

        with ArchiveReader.open(archive) as reader:
            pool_names = reader.pool_names()
            archived = {
                date: substrate_io.load_siblings(generation, pool_names)
                for date, generation in reader.generations_by_date(
                    substrate_io.SIBLINGS_KIND
                ).items()
            }
        expected = self._expected(universe)
        assert sorted(archived) == [d.isoformat() for d, _ in expected]
        for date, siblings in expected:
            assert archived[date.isoformat()].same_pairs(siblings)

        # Scoring the archived generations against the ledger: exact.
        results = [
            (date, archived[date.isoformat()]) for date in dates
        ]
        score = score_series(results, universe.ledger)
        assert score.precision == 1.0 and score.recall == 1.0
        assert score.churn.unreflected == 0 and score.churn.max_lag == 0

    def test_status_endpoint_reflects_event_feed(self, tmp_path):
        universe = EventUniverse(self.SCRIPT, base=POPULATION)
        dates = universe.dates
        feed = tmp_path / "feed"
        feed.mkdir()
        for date in dates:
            write_snapshot_file(universe.snapshot_at(date), feed)
        archive = tmp_path / "events.sparch"
        service = SiblingQueryService()
        watcher = SnapshotWatcher(
            SnapshotDirectorySource(feed),
            universe.annotator_at,
            archive,
            service=service,
            registry=MetricsRegistry(),
        )
        watcher.run(once=True)
        with make_server(service, port=0) as server:
            server.status_extras["watch"] = watcher.status
            server.start()
            port = server.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/status", timeout=5
            ) as response:
                payload = json.load(response)
        assert payload["watch"]["generations"] == len(dates)
        assert payload["watch"]["backlog"] == 0
        assert payload["watch"]["last_date"] == dates[-1].isoformat()
        assert payload["watch"]["swaps_skipped"] == 3
