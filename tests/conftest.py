"""Shared fixtures: one tiny universe per test session.

Also registers the hypothesis profiles the property-based differential
suite (``test_differential_engines.py``) runs under:

* ``dev`` (default) — a handful of examples per property, deadline
  disabled, so the tier-1 run stays fast.
* ``differential`` — the blocking CI job's profile: more examples,
  deadline disabled, and failure blobs printed so any counterexample is
  reproducible from the CI log (``HYPOTHESIS_PROFILE=differential``).
"""

import os

import pytest

from repro.dates import REFERENCE_DATE
from repro.synth import build_universe


def pytest_configure(config):
    """Register the telemetry marker used by the CI fleet-stress job."""
    config.addinivalue_line(
        "markers",
        "obs: observability/telemetry suites (metrics registry, tracing, "
        "status endpoints) — selected by the blocking CI fleet-stress job",
    )

try:
    from hypothesis import HealthCheck, settings

    # "dev" keeps hypothesis's stock example budget (the pre-existing
    # nettypes/metrics property tests rely on it); it only disables the
    # deadline so slow CI containers don't flake.  The expensive
    # process-forking differential tests carry their own explicit
    # @settings(max_examples=...) caps instead.
    settings.register_profile(
        "dev",
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "differential",
        deadline=None,
        max_examples=100,
        print_blob=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis ships with the CI image
    pass


def as_mapping(siblings):
    """Every observable field of every pair, keyed by the prefix pair.

    The shared definition of "two engines agree" used by the substrate
    equivalence, differential, and parallel-engine suites — extend it
    here (not in one suite) when :class:`SiblingPair` grows a field.
    """
    return {
        (pair.v4_prefix, pair.v6_prefix): (
            pair.similarity,
            pair.shared_domains,
            pair.v4_domain_count,
            pair.v6_domain_count,
        )
        for pair in siblings
    }


@pytest.fixture(scope="session")
def tiny_universe():
    return build_universe("tiny")


@pytest.fixture(scope="session")
def tiny_detection(tiny_universe):
    """(siblings, index) for the reference date on the tiny universe."""
    from repro.core.detection import detect_with_index

    return detect_with_index(
        tiny_universe.snapshot_at(REFERENCE_DATE),
        tiny_universe.annotator_at(REFERENCE_DATE),
    )
