"""Shared fixtures: one tiny universe per test session."""

import pytest

from repro.dates import REFERENCE_DATE
from repro.synth import build_universe


@pytest.fixture(scope="session")
def tiny_universe():
    return build_universe("tiny")


@pytest.fixture(scope="session")
def tiny_detection(tiny_universe):
    """(siblings, index) for the reference date on the tiny universe."""
    from repro.core.detection import detect_with_index

    return detect_with_index(
        tiny_universe.snapshot_at(REFERENCE_DATE),
        tiny_universe.annotator_at(REFERENCE_DATE),
    )
