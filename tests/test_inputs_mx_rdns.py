"""Tests for MX records, rDNS, and the alternative-input adapters."""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.inputs import (
    compare_inputs,
    index_from_domains,
    index_from_mx,
    index_from_rdns,
    siblings_from_index,
)
from repro.dates import REFERENCE_DATE
from repro.dns.records import ResourceRecord, RRType
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone, ZoneError
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

DATE = datetime.date(2024, 9, 11)


def p(text):
    return Prefix.parse(text)


def addr(text):
    return Prefix.parse(text).value


class TestMxRecords:
    def test_mx_record_construction(self):
        record = ResourceRecord.mx("example.com", "mx1.mail.example", 10)
        assert record.rrtype is RRType.MX
        assert record.target == "mx1.mail.example"
        assert record.preference == 10

    def test_mx_validation(self):
        with pytest.raises(ValueError):
            ResourceRecord("example.com", RRType.MX, target="mx.example")  # no pref
        with pytest.raises(ValueError):
            ResourceRecord("example.com", RRType.MX, address=1, preference=10)
        with pytest.raises(ValueError):
            ResourceRecord.mx("example.com", "mx.example", -1)
        with pytest.raises(ValueError):
            ResourceRecord.a("example.com", 1).__class__(
                "example.com", RRType.A, address=1, preference=5
            )

    def test_mx_coexists_with_addresses(self):
        zone = Zone()
        zone.add(ResourceRecord.a("example.com", 1))
        zone.add(ResourceRecord.mx("example.com", "mx.example", 10))
        assert len(zone.records("example.com")) == 2

    def test_mx_conflicts_with_cname(self):
        zone = Zone()
        zone.add(ResourceRecord.cname("alias.example.com", "real.example.com"))
        with pytest.raises(ZoneError):
            zone.add(ResourceRecord.mx("alias.example.com", "mx.example", 10))

    def test_resolve_mx_preference_order(self):
        zone = Zone()
        zone.add(ResourceRecord.mx("example.com", "backup.mail.example", 20))
        zone.add(ResourceRecord.mx("example.com", "primary.mail.example", 10))
        exchanges = Resolver(zone).resolve_mx("example.com")
        assert exchanges == ["primary.mail.example", "backup.mail.example"]

    def test_resolve_mx_follows_cname(self):
        zone = Zone()
        zone.add(ResourceRecord.cname("www.example.com", "example.com"))
        zone.add(ResourceRecord.mx("example.com", "mx.example", 10))
        assert Resolver(zone).resolve_mx("www.example.com") == ["mx.example"]

    def test_resolve_mx_loop_returns_empty(self):
        zone = Zone()
        zone.add(ResourceRecord.cname("a.example.com", "b.example.com"))
        zone.add(ResourceRecord.cname("b.example.com", "a.example.com"))
        assert Resolver(zone).resolve_mx("a.example.com") == []

    def test_resolve_mx_absent(self):
        assert Resolver(Zone()).resolve_mx("nothing.example.com") == []


class TestMxInput:
    def build(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 64500)
        rib.announce(p("2600:100::/48"), 64500)
        zone = Zone()
        zone.add(ResourceRecord.mx("shop.example.com", "mx.host.example", 10))
        zone.add(ResourceRecord.a("mx.host.example", addr("5.1.0.25")))
        zone.add(ResourceRecord.aaaa("mx.host.example", addr("2600:100::25")))
        zone.add(ResourceRecord.mx("v4mail.example.com", "legacy.host.example", 10))
        zone.add(ResourceRecord.a("legacy.host.example", addr("5.1.0.26")))
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        return zone, annotator

    def test_index_from_mx(self):
        zone, annotator = self.build()
        index = index_from_mx(
            zone, ["shop.example.com", "v4mail.example.com", "missing.example.com"],
            annotator, DATE,
        )
        # Only the dual-stack exchange contributes.
        assert index.domain_count == 1
        assert index.domains_of(p("5.1.0.0/24")) == {"shop.example.com"}
        siblings = siblings_from_index(index)
        assert len(siblings) == 1


class TestRdnsInput:
    def test_index_from_rdns(self):
        rib = Rib()
        rib.announce(p("5.1.0.0/24"), 64500)
        rib.announce(p("2600:100::/48"), 64500)
        annotator = PrefixAnnotator(rib, rib, missing_fraction=0.0)
        names = {
            (IPV4, addr("5.1.0.1")): "node-1.as64500.rev.example",
            (IPV6, addr("2600:100::1")): "node-1.as64500.rev.example",
            (IPV4, addr("5.1.0.2")): "node-2.as64500.rev.example",  # v4-only
        }
        index = index_from_rdns(names, annotator, DATE)
        assert index.domain_count == 1
        siblings = siblings_from_index(index)
        assert len(siblings) == 1
        assert next(iter(siblings)).similarity == 1.0


class TestInputsOnUniverse:
    @pytest.fixture(scope="class")
    def signals(self, tiny_universe):
        annotator = tiny_universe.annotator_at(REFERENCE_DATE)
        domain_index = index_from_domains(
            tiny_universe.snapshot_at(REFERENCE_DATE), annotator
        )
        mx_index = index_from_mx(
            tiny_universe.zone_at(REFERENCE_DATE),
            tiny_universe.queried_names_at(REFERENCE_DATE),
            annotator,
            REFERENCE_DATE,
        )
        rdns_index = index_from_rdns(
            tiny_universe.rdns_inventory(REFERENCE_DATE), annotator, REFERENCE_DATE
        )
        return (
            siblings_from_index(domain_index),
            siblings_from_index(mx_index),
            siblings_from_index(rdns_index),
        )

    def test_all_signals_detect_siblings(self, signals):
        domains, mx, rdns = signals
        assert len(domains) > len(mx) > 0
        assert len(rdns) > 0

    def test_mx_confirms_domain_pairs(self, signals):
        domains, mx, _ = signals
        agreement = compare_inputs("mx", mx, "domains", domains)
        assert agreement.compatibility_share > 0.4
        assert agreement.pairs_a == len(mx)

    def test_rdns_confirms_domain_pairs(self, signals):
        domains, _, rdns = signals
        agreement = compare_inputs("rdns", rdns, "domains", domains)
        assert agreement.compatibility_share > 0.5

    def test_mx_zone_records_exist(self, tiny_universe):
        zone = tiny_universe.zone_at(REFERENCE_DATE)
        mx_records = [
            r
            for name in zone.names()
            for r in zone.records(name, RRType.MX)
        ]
        assert mx_records
        # Exchange hosts resolve on both families.
        resolver = Resolver(zone)
        target = mx_records[0].target
        result_a, result_aaaa = resolver.resolve_dual_stack(target)
        assert result_a.ok and result_aaaa.ok

    def test_compare_inputs_bisect_equals_quadratic_oracle(self):
        """The packed-network-key bisect agreement equals the original
        all-pairs overlap scan on randomized nested-prefix sibling sets."""
        import random

        from repro.core.inputs import InputAgreement
        from repro.core.siblings import SiblingPair, SiblingSet

        def oracle(label_a, siblings_a, label_b, siblings_b):
            compatible = 0
            b_pairs = list(siblings_b)
            for pair in siblings_a:
                for other in b_pairs:
                    if pair.v4_prefix.overlaps(
                        other.v4_prefix
                    ) and pair.v6_prefix.overlaps(other.v6_prefix):
                        compatible += 1
                        break
            return InputAgreement(
                label_a, label_b, len(siblings_a), len(siblings_b), compatible
            )

        rng = random.Random(20260728)
        v4_pool = [
            Prefix.from_address(IPV4, (20 << 24) | (i << 18), length)
            for i in range(6)
            for length in (14, 16, 20, 24)
        ]
        v6_pool = [
            Prefix.from_address(
                IPV6, (0x2400_00DB << 96) | (i << 88), length
            )
            for i in range(6)
            for length in (28, 32, 40, 48)
        ]

        def random_siblings():
            return SiblingSet(
                DATE,
                (
                    SiblingPair(
                        v4_prefix=rng.choice(v4_pool),
                        v6_prefix=rng.choice(v6_pool),
                        similarity=rng.random(),
                        shared_domains=frozenset({f"s{rng.randrange(9)}.example"}),
                        v4_domain_count=rng.randint(1, 9),
                        v6_domain_count=rng.randint(1, 9),
                    )
                    for _ in range(rng.randint(0, 30))
                ),
            )

        for _ in range(40):
            siblings_a, siblings_b = random_siblings(), random_siblings()
            assert compare_inputs(
                "a", siblings_a, "b", siblings_b
            ) == oracle("a", siblings_a, "b", siblings_b)

    def test_rdns_inventory_shared_names(self, tiny_universe):
        names = tiny_universe.rdns_inventory(REFERENCE_DATE)
        assert names
        by_name: dict[str, set[int]] = {}
        for (version, _), name in names.items():
            by_name.setdefault(name, set()).add(version)
        dual = [n for n, versions in by_name.items() if versions == {IPV4, IPV6}]
        # Dual-stack rDNS names track the dual-stack domain share (~30%),
        # since single-stack hosts only surface one family.
        assert len(dual) > 0.15 * len(by_name)
        assert len(dual) > 50
