"""End-to-end telemetry: pipeline spans, endpoints, fleet merge, CLI.

The unit contracts live in ``test_obs_metrics.py``; this suite proves
the wiring — detection Steps 1–4 (including the sharded engine's
per-shard timings) record into the process registry, a serving worker
exposes ``/v1/status`` + ``/v1/metrics``, the fleet supervisor merges
per-worker registries over the control protocol and serves the merged
view on its control port, and the ``repro status`` / ``detect --stats``
CLI surfaces render it all.
"""

import datetime
import json
import socket
import urllib.request

import pytest

from repro.core.detection import detect_with_index
from repro.core.domainsets import build_index
from repro.core.parallel import ShardedSubstrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.prefix import Prefix
from repro.obs.metrics import MetricsRegistry, split_key
from repro.obs.tracing import (
    get_registry,
    record_stage,
    set_enabled,
    set_registry,
    stage_table,
    trace,
    tracing_enabled,
)
from repro.publish import PublishedPair
from repro.serving.http import make_server
from repro.serving.index import SiblingLookupIndex
from repro.serving.service import SiblingQueryService
from repro.storage.index_io import append_index

pytestmark = pytest.mark.obs

needs_reuseport = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="serving fleet requires SO_REUSEPORT",
)


@pytest.fixture
def fresh_registry():
    """Install an empty process-wide registry; restore the old after."""
    previous = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def _demo_index(generation: int = 0) -> SiblingLookupIndex:
    pair = PublishedPair(
        v4_prefix=Prefix.parse("192.0.2.0/24"),
        v6_prefix=Prefix.parse("2001:db8::/32"),
        jaccard=1.0,
        shared_domains=3,
        v4_domains=3,
        v6_domains=3,
        same_org=None,
        rov_status=None,
    )
    return SiblingLookupIndex.from_pairs(
        [pair], datetime.date(2024, 1, 1) + datetime.timedelta(days=generation)
    )


def _fetch(url: str) -> "tuple[int, str, str]":
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


# -- spans -------------------------------------------------------------------


def test_trace_span_records(fresh_registry):
    with trace("demo.stage", items=2, kind="unit") as span:
        span.add_items(3)
    snap = fresh_registry.snapshot()
    assert snap["counters"]['stage.calls{kind="unit",stage="demo.stage"}'] == 1
    assert snap["counters"]['stage.items{kind="unit",stage="demo.stage"}'] == 5
    wall = snap["histograms"]['stage.wall_seconds{kind="unit",stage="demo.stage"}']
    assert wall["count"] == 1 and wall["sum"] >= 0.0


def test_disabled_tracing_is_noop(fresh_registry):
    assert tracing_enabled()
    previous = set_enabled(False)
    try:
        assert not tracing_enabled()
        with trace("demo.stage"):
            pass
        record_stage("demo.stage", 1.0, 1.0)
        snap = fresh_registry.snapshot()
        assert not snap["counters"] and not snap["histograms"]
    finally:
        set_enabled(previous)


def test_detect_records_pipeline_stages(fresh_registry, tiny_universe):
    siblings, _ = detect_with_index(
        tiny_universe.snapshot_at(REFERENCE_DATE),
        tiny_universe.annotator_at(REFERENCE_DATE),
    )
    assert len(siblings) > 0
    stages = {
        split_key(key)[1]["stage"]
        for key in fresh_registry.snapshot()["counters"]
        if split_key(key)[0] == "stage.calls"
    }
    for stage in (
        "step12.build_index",
        "step12.columnarize",
        "step3.accumulate",
        "step4.select",
        "step34.select",
    ):
        assert stage in stages, f"stage {stage!r} never recorded: {stages}"


def test_sharded_engine_records_per_shard_timings(
    fresh_registry, tiny_universe
):
    index = build_index(
        tiny_universe.snapshot_at(REFERENCE_DATE),
        tiny_universe.annotator_at(REFERENCE_DATE),
    )
    result = ShardedSubstrate(workers=2, min_pair_rows=0).select(index)
    assert len(result) > 0
    shards = {
        split_key(key)[1]["shard"]
        for key in fresh_registry.snapshot()["counters"]
        if split_key(key)[0] == "stage.calls"
        and split_key(key)[1].get("stage") == "step3.shard"
    }
    assert len(shards) >= 2, f"expected per-shard rows, got {shards}"


def test_stage_table_renders_rows(fresh_registry):
    assert stage_table(fresh_registry.snapshot()) == (
        "no stage timings recorded"
    )
    record_stage("x.y", 0.5, 0.25, items=10)
    record_stage("step3.shard", 0.1, 0.1, items=4, shard="1")
    table = stage_table(fresh_registry.snapshot())
    assert "wall_ms/call" in table
    assert "x.y" in table
    assert "step3.shard [shard=1]" in table


def test_detect_stats_cli(fresh_registry, capsys):
    from repro.cli import main

    assert main(["detect", "--scenario", "tiny", "--stats"]) == 0
    err = capsys.readouterr().err
    assert "step3.accumulate" in err
    assert "wall_ms/call" in err


# -- worker endpoints --------------------------------------------------------


def test_worker_status_and_metrics_endpoints():
    service = SiblingQueryService(_demo_index(), registry=MetricsRegistry())
    with make_server(service, port=0) as server:
        server.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

        status_code, content_type, body = _fetch(base + "/v1/status")
        assert status_code == 200 and content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["fleet"] is None
        assert payload["worker"]["pid"] > 0
        assert payload["worker"]["uptime_seconds"] >= 0.0
        assert payload["service"]["generation"] == service.generation

        _fetch(base + "/v1/lookup?ip=192.0.2.7")
        status_code, content_type, text = _fetch(base + "/v1/metrics")
        assert status_code == 200 and content_type.startswith("text/plain")
        assert "repro_serve_lookups_total 1" in text.splitlines()
        assert "repro_serve_generation" in text
        assert "repro_serve_uptime_seconds" in text


def test_service_metrics_count_hits_misses_and_errors():
    registry = MetricsRegistry()
    service = SiblingQueryService(_demo_index(), registry=registry)
    service.lookup("192.0.2.7")
    service.lookup("192.0.2.7")  # cached answer
    service.batch(["192.0.2.7", "203.0.113.9"])
    with pytest.raises(Exception):
        service.lookup("not-an-address")
    service.observe_gauges()
    snap = registry.snapshot()
    assert snap["counters"]["serve.lookups"] == 3
    assert snap["counters"]["serve.query_errors"] == 1
    assert snap["counters"]["serve.batches"] == 1
    assert snap["counters"]["serve.batch_items"] == 2
    assert snap["counters"]["serve.cache_hits"] >= 1
    assert snap["gauges"]["serve.generation"] == float(service.generation)


# -- fleet aggregation -------------------------------------------------------


@needs_reuseport
def test_fleet_merges_worker_registries(tmp_path):
    from repro.serving.fleet import ServiceSource, ServingFleet

    archive = tmp_path / "obs.sparch"
    append_index(archive, _demo_index(0))
    lookups = 10
    with ServingFleet(ServiceSource.archive(archive), workers=2) as fleet:
        fleet.start()
        for _ in range(lookups):
            _fetch(fleet.url + "/v1/lookup?ip=192.0.2.7")

        data = fleet.metrics()
        merged = data["merged"]
        assert merged["counters"]["serve.lookups"] == lookups
        assert merged["gauges"]["fleet.workers"] == 2.0
        assert merged["gauges"]["fleet.workers_alive"] == 2.0
        assert merged["gauges"]["fleet.restarts"] == 0.0
        assert merged["gauges"]["fleet.swap_lag"] == 0.0
        # Worker snapshots individually sum to the merged counter.
        assert sum(
            entry["metrics"]["counters"].get("serve.lookups", 0)
            for entry in data["workers"]
        ) == lookups

        status_code, _, body = _fetch(fleet.control_url + "/v1/status")
        assert status_code == 200
        status = json.loads(body)
        assert status["generation"] >= 1
        assert status["swap_lag"] == 0
        for row in status["workers"]:
            assert row["alive"] is True
            assert row["restarts"] == 0
            assert row["lag"] == 0

        status_code, content_type, text = _fetch(
            fleet.control_url + "/v1/metrics"
        )
        assert status_code == 200 and content_type.startswith("text/plain")
        assert f"repro_serve_lookups_total {lookups}" in text.splitlines()
        assert "repro_fleet_workers 2" in text.splitlines()


@needs_reuseport
def test_fleet_status_tracks_generation_after_swap(tmp_path):
    from repro.serving.fleet import ServiceSource, ServingFleet

    archive = tmp_path / "swap.sparch"
    append_index(archive, _demo_index(0))
    with ServingFleet(ServiceSource.archive(archive), workers=2) as fleet:
        fleet.start()
        append_index(archive, _demo_index(1))
        acks = fleet.broadcast_swap()
        assert len(acks) == 2
        status = fleet.status()
        assert status["generation"] == 2  # initial attach + one swap
        assert status["swap_lag"] == 0
        merged = fleet.metrics()["merged"]
        assert merged["counters"]["serve.swaps"] == 2  # one per worker
        assert merged["gauges"]["fleet.generation"] == 2.0


# -- status CLI --------------------------------------------------------------


@needs_reuseport
def test_status_cli_fleet_and_worker_views(tmp_path, capsys):
    from repro.cli import main
    from repro.serving.fleet import ServiceSource, ServingFleet

    archive = tmp_path / "cli.sparch"
    append_index(archive, _demo_index(0))
    with ServingFleet(ServiceSource.archive(archive), workers=2) as fleet:
        fleet.start()
        assert main(["status", fleet.control_url]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "slot" in out and "restarts" in out

        assert main(["status", fleet.control_url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["workers"]) == 2

        assert main(["status", fleet.url]) == 0
        out = capsys.readouterr().out
        assert out.startswith("worker pid=")


def test_status_cli_unreachable_is_exit_2(capsys):
    from repro.cli import main

    assert main(["status", "http://127.0.0.1:1", "--timeout", "0.5"]) == 2
    assert "error" in capsys.readouterr().err
