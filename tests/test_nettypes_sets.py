"""Tests for repro.nettypes.sets.PrefixSet."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nettypes.addr import IPV4
from repro.nettypes.prefix import Prefix
from repro.nettypes.sets import PrefixSet, aggregate


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestPrefixSet:
    def test_membership_and_coverage(self):
        s = PrefixSet([p("192.0.2.0/24"), p("2001:db8::/32")])
        assert p("192.0.2.0/24") in s
        assert p("192.0.2.0/25") not in s  # exact membership
        assert s.covers(p("192.0.2.0/25"))  # but covered
        assert s.covers(p("2001:db8:1::/48"))
        assert not s.covers(p("198.51.100.0/24"))

    def test_covers_address(self):
        s = PrefixSet([p("192.0.2.0/24")])
        assert s.covers_address(IPV4, p("192.0.2.77").value)
        assert not s.covers_address(IPV4, p("192.0.3.1").value)

    def test_covering_prefix_most_specific(self):
        s = PrefixSet([p("10.0.0.0/8"), p("10.1.0.0/16")])
        assert s.covering_prefix(p("10.1.2.0/24")) == p("10.1.0.0/16")
        assert s.covering_prefix(p("10.2.0.0/24")) == p("10.0.0.0/8")

    def test_add_discard(self):
        s = PrefixSet()
        s.add(p("10.0.0.0/8"))
        assert len(s) == 1
        s.discard(p("10.0.0.0/8"))
        s.discard(p("10.0.0.0/8"))  # idempotent
        assert len(s) == 0

    def test_iteration_both_versions(self):
        s = PrefixSet([p("2001:db8::/32"), p("10.0.0.0/8")])
        assert set(s) == {p("10.0.0.0/8"), p("2001:db8::/32")}

    def test_members_under(self):
        s = PrefixSet([p("10.0.0.0/16"), p("10.1.0.0/16"), p("11.0.0.0/16")])
        assert set(s.members_under(p("10.0.0.0/8"))) == {
            p("10.0.0.0/16"),
            p("10.1.0.0/16"),
        }

    def test_minimized_drops_covered(self):
        s = PrefixSet([p("10.0.0.0/8"), p("10.1.0.0/16")])
        assert set(s.minimized()) == {p("10.0.0.0/8")}

    def test_minimized_merges_siblings(self):
        s = PrefixSet([p("192.0.2.0/25"), p("192.0.2.128/25")])
        assert set(s.minimized()) == {p("192.0.2.0/24")}

    def test_minimized_merges_recursively(self):
        s = PrefixSet(
            [p("192.0.2.0/26"), p("192.0.2.64/26"), p("192.0.2.128/25")]
        )
        assert set(s.minimized()) == {p("192.0.2.0/24")}

    def test_aggregate_helper(self):
        result = aggregate([p("10.0.0.0/9"), p("10.128.0.0/9"), p("10.0.0.0/16")])
        assert result == [p("10.0.0.0/8")]

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.builds(
                lambda v, l: Prefix.from_address(IPV4, v << 24, l),
                st.integers(min_value=0, max_value=255),
                st.integers(min_value=1, max_value=8),
            ),
            max_size=20,
        )
    )
    def test_minimized_preserves_coverage(self, prefixes):
        original = PrefixSet(prefixes)
        minimized = original.minimized()
        # Every original member must still be covered, and no new space
        # may appear except via sibling merges (checked by spot queries).
        for prefix in prefixes:
            assert minimized.covers(prefix)
