"""Snapshot-delta edge cases: appear, disappear, flip, one-family change.

The incremental pipeline's correctness rests on two layers doing exact
bookkeeping: :meth:`DnsSnapshot.delta_to` must classify every domain
transition, and :meth:`PrefixDomainIndex.apply_delta` must translate
those transitions into index mutations that land on exactly the state a
from-scratch :func:`build_index` of the new snapshot would produce.
Every test here asserts both layers directly, without the detection
engines on top.
"""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.domainsets import build_index
from repro.dns.openintel import (
    DnsSnapshot,
    DomainObservation,
    SnapshotDelta,
    SnapshotSeries,
)
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

DATE_0 = datetime.date(2024, 9, 1)
DATE_1 = datetime.date(2024, 9, 2)
DATE_2 = datetime.date(2024, 9, 3)

# Public, non-reserved space: the annotator discards reserved addresses.
V4_PREFIXES = [
    Prefix.from_address(IPV4, (20 << 24) | (i << 8), 24) for i in range(8)
]
V6_PREFIXES = [
    Prefix.from_address(IPV6, (0x2400_00DB << 96) | (i << 80), 48)
    for i in range(8)
]


def v4(pool: int, offset: int = 1) -> int:
    return V4_PREFIXES[pool].first_address + offset


def v6(pool: int, offset: int = 1) -> int:
    return V6_PREFIXES[pool].first_address + offset


def make_annotator() -> PrefixAnnotator:
    rib = Rib()
    for position, prefix in enumerate(V4_PREFIXES + V6_PREFIXES):
        rib.announce(prefix, 65000 + position)
    return PrefixAnnotator(rib, missing_fraction=0.0)


def obs(domain: str, v4_addresses=(), v6_addresses=()) -> DomainObservation:
    return DomainObservation(
        domain, tuple(v4_addresses), tuple(v6_addresses)
    )


def snap(date: datetime.date, observations) -> DnsSnapshot:
    return DnsSnapshot(date, observations)


class TestDeltaClassification:
    def test_appearing_domain_is_added(self):
        old = snap(DATE_0, [obs("a.example", [v4(0)], [v6(0)])])
        new = snap(
            DATE_1,
            [
                obs("a.example", [v4(0)], [v6(0)]),
                obs("b.example", [v4(1)], [v6(1)]),
            ],
        )
        delta = old.delta_to(new)
        assert [o.domain for o in delta.added] == ["b.example"]
        assert delta.removed == ()
        assert delta.changed == ()
        assert delta.old_date == DATE_0 and delta.new_date == DATE_1

    def test_disappearing_domain_is_removed(self):
        old = snap(
            DATE_0,
            [
                obs("a.example", [v4(0)], [v6(0)]),
                obs("b.example", [v4(1)], [v6(1)]),
            ],
        )
        new = snap(DATE_1, [obs("a.example", [v4(0)], [v6(0)])])
        delta = old.delta_to(new)
        assert delta.added == ()
        assert delta.removed == ("b.example",)
        assert delta.changed == ()

    def test_dual_stack_flip_is_changed_not_removed(self):
        old = snap(DATE_0, [obs("a.example", [v4(0)], [v6(0)])])
        new = snap(DATE_1, [obs("a.example", [v4(0)], [])])
        delta = old.delta_to(new)
        assert delta.removed == () and delta.added == ()
        ((before, after),) = delta.changed
        assert before.is_dual_stack and not after.is_dual_stack

    def test_one_family_address_change(self):
        old = snap(DATE_0, [obs("a.example", [v4(0, 1)], [v6(0)])])
        new = snap(DATE_1, [obs("a.example", [v4(0, 2)], [v6(0)])])
        ((before, after),) = old.delta_to(new).changed
        assert before.v4_addresses != after.v4_addresses
        assert before.v6_addresses == after.v6_addresses

    def test_unchanged_snapshot_yields_empty_delta(self):
        observations = [obs("a.example", [v4(0)], [v6(0)])]
        delta = snap(DATE_0, observations).delta_to(snap(DATE_1, observations))
        assert delta.is_empty
        assert delta.touched_domains == 0

    def test_series_delta_and_consecutive_deltas(self):
        series = SnapshotSeries(
            [
                snap(DATE_0, [obs("a.example", [v4(0)], [v6(0)])]),
                snap(DATE_1, [obs("b.example", [v4(1)], [v6(1)])]),
                snap(DATE_2, []),
            ]
        )
        direct = series.delta(DATE_0, DATE_2)
        assert direct.removed == ("a.example",)
        assert direct.added == ()
        steps = list(series.deltas())
        assert len(steps) == 2
        assert isinstance(steps[0], SnapshotDelta)
        assert steps[0].removed == ("a.example",)
        assert [o.domain for o in steps[0].added] == ["b.example"]
        assert steps[1].removed == ("b.example",)


def assert_index_contents_equal(incremental, fresh):
    """The delta-maintained index equals a from-scratch build."""
    assert incremental.domain_v4_prefixes == fresh.domain_v4_prefixes
    assert incremental.domain_v6_prefixes == fresh.domain_v6_prefixes
    assert incremental.domain_v4_addresses == fresh.domain_v4_addresses
    assert incremental.domain_v6_addresses == fresh.domain_v6_addresses
    assert incremental.v4_domains == fresh.v4_domains
    assert incremental.v6_domains == fresh.v6_domains
    assert incremental.dropped_labels == fresh.dropped_labels
    assert incremental.dropped_domains == fresh.dropped_domains
    assert incremental.date == fresh.date


def roll(old_observations, new_observations):
    """apply_delta old → new; returns (rolled index, fresh index)."""
    annotator = make_annotator()
    old_snapshot = snap(DATE_0, old_observations)
    new_snapshot = snap(DATE_1, new_observations)
    index = build_index(old_snapshot, annotator)
    index.apply_delta(old_snapshot.delta_to(new_snapshot), annotator)
    return index, build_index(new_snapshot, make_annotator())


class TestApplyDelta:
    def test_appearing_domain(self):
        index, fresh = roll(
            [obs("a.example", [v4(0)], [v6(0)])],
            [
                obs("a.example", [v4(0)], [v6(0)]),
                obs("b.example", [v4(1)], [v6(1)]),
            ],
        )
        assert_index_contents_equal(index, fresh)
        assert "b.example" in index.domain_v4_prefixes

    def test_disappearing_domain_cleans_empty_prefixes(self):
        index, fresh = roll(
            [
                obs("a.example", [v4(0)], [v6(0)]),
                obs("b.example", [v4(1)], [v6(1)]),
            ],
            [obs("a.example", [v4(0)], [v6(0)])],
        )
        assert_index_contents_equal(index, fresh)
        assert V4_PREFIXES[1] not in index.v4_domains
        assert V6_PREFIXES[1] not in index.v6_domains

    def test_dual_stack_flip_off_removes_from_index(self):
        index, fresh = roll(
            [obs("a.example", [v4(0)], [v6(0)])],
            [obs("a.example", [v4(0)], [])],
        )
        assert_index_contents_equal(index, fresh)
        assert index.domain_count == 0

    def test_dual_stack_flip_on_inserts(self):
        index, fresh = roll(
            [obs("a.example", [v4(0)], [])],
            [obs("a.example", [v4(0)], [v6(0)])],
        )
        assert_index_contents_equal(index, fresh)
        assert index.domain_count == 1

    def test_one_family_prefix_move(self):
        index, fresh = roll(
            [obs("a.example", [v4(0)], [v6(0)])],
            [obs("a.example", [v4(2)], [v6(0)])],
        )
        assert_index_contents_equal(index, fresh)
        assert index.domain_v4_prefixes["a.example"] == {V4_PREFIXES[2]}

    def test_renumber_within_prefix_keeps_membership_and_updates_addresses(self):
        annotator = make_annotator()
        old_snapshot = snap(DATE_0, [obs("a.example", [v4(0, 7)], [v6(0)])])
        new_snapshot = snap(DATE_1, [obs("a.example", [v4(0, 8)], [v6(0)])])
        index = build_index(old_snapshot, annotator)
        recorded = index.apply_delta(
            old_snapshot.delta_to(new_snapshot), annotator
        )
        # Membership unchanged → the recorded IndexDelta is empty, but
        # the concrete addresses (SP-Tuner input) moved.
        assert recorded.is_empty
        assert index.domain_v4_addresses["a.example"] == (v4(0, 8),)
        assert_index_contents_equal(
            index, build_index(new_snapshot, make_annotator())
        )

    def test_domain_dropping_to_unrouted_space_and_back(self):
        unrouted = (21 << 24) | 1  # public space, but not announced
        index, fresh = roll(
            [obs("a.example", [v4(0)], [v6(0)])],
            [obs("a.example", [unrouted], [v6(0)])],
        )
        assert_index_contents_equal(index, fresh)
        assert index.dropped_domains == 1
        # ... and back into routed space.
        annotator = make_annotator()
        back = snap(DATE_2, [obs("a.example", [v4(3)], [v6(0)])])
        index.apply_delta(
            snap(DATE_1, [obs("a.example", [unrouted], [v6(0)])]).delta_to(back),
            annotator,
        )
        assert_index_contents_equal(index, build_index(back, make_annotator()))
        assert index.dropped_domains == 0

    def test_version_and_delta_log(self):
        annotator = make_annotator()
        s0 = snap(DATE_0, [obs("a.example", [v4(0)], [v6(0)])])
        s1 = snap(DATE_1, [obs("b.example", [v4(1)], [v6(1)])])
        index = build_index(s0, annotator)
        assert index.version == 0
        recorded = index.apply_delta(s0.delta_to(s1), annotator)
        assert index.version == 1 == recorded.version
        assert index.deltas_since(0) == [recorded]
        assert index.deltas_since(1) == []
        index.mark_mutated()
        assert index.version == 2
        # mark_mutated leaves no delta: the chain from 1 is broken.
        assert index.deltas_since(1) is None
        assert index.deltas_since(0) is None


def test_rib_signature_tracks_contents():
    rib_a = Rib()
    rib_b = Rib()
    for rib in (rib_a, rib_b):
        rib.announce(V4_PREFIXES[0], 65000)
        rib.announce(V6_PREFIXES[0], 65001)
    assert rib_a.signature() == rib_b.signature()
    annotator_a = PrefixAnnotator(rib_a, missing_fraction=0.0)
    annotator_b = PrefixAnnotator(rib_b, missing_fraction=0.0)
    assert annotator_a.signature() == annotator_b.signature()
    rib_b.announce(V4_PREFIXES[1], 65002)
    assert rib_a.signature() != rib_b.signature()
    assert annotator_a.signature() != annotator_b.signature()
    rib_b.withdraw(V4_PREFIXES[1])
    assert rib_a.signature() == rib_b.signature()
    # Differing missing fractions annotate differently even on equal RIBs.
    assert (
        PrefixAnnotator(rib_a, missing_fraction=0.0).signature()
        != PrefixAnnotator(rib_a, missing_fraction=0.5).signature()
    )


class TestEmptyVersusMissing:
    """An empty-but-present snapshot (a rotation blackout window) is a
    measurement outcome; a missing date is an error.  The two used to be
    indistinguishable — ``SnapshotSeries.at``/``delta`` raised a bare
    ``KeyError`` either way and an empty member looked like a hole."""

    def _series(self):
        return SnapshotSeries(
            [
                snap(DATE_0, [obs("a.example", [v4(0)], [v6(0)])]),
                snap(DATE_1, []),  # measured, nothing answered
                snap(DATE_2, [obs("a.example", [v4(0)], [v6(0)])]),
            ]
        )

    def test_empty_member_is_classified_not_missing(self):
        series = self._series()
        assert series.at(DATE_1).is_empty
        assert not series.at(DATE_0).is_empty
        assert series.empty_dates() == [DATE_1]
        assert DATE_1 in series

    def test_missing_date_raises_descriptive_lookup_error(self):
        series = self._series()
        missing = DATE_2 + datetime.timedelta(days=30)
        with pytest.raises(LookupError, match="no snapshot for"):
            series.at(missing)
        with pytest.raises(LookupError, match="no snapshot for"):
            series.delta(DATE_0, missing)
        with pytest.raises(LookupError, match="no snapshot for"):
            series.delta(missing, DATE_0)
        assert series.get(missing) is None
        assert series.get(DATE_1) is series.at(DATE_1)

    def test_empty_endpoint_deltas_are_full_retraction_and_readdition(self):
        series = self._series()
        into_blackout = series.delta(DATE_0, DATE_1)
        assert into_blackout.removed == ("a.example",)
        assert into_blackout.added == () and into_blackout.changed == ()
        out_of_blackout = series.delta(DATE_1, DATE_2)
        assert [o.domain for o in out_of_blackout.added] == ["a.example"]
        assert out_of_blackout.removed == ()

    def test_index_rolls_through_an_empty_snapshot(self):
        """Applying the blackout deltas lands the index exactly where a
        from-scratch build of each endpoint would."""
        annotator = make_annotator()
        series = self._series()
        index = build_index(series.at(DATE_0), annotator)
        index.apply_delta(series.delta(DATE_0, DATE_1), annotator)
        empty = build_index(series.at(DATE_1), annotator)
        assert index.content_signature() == empty.content_signature()
        index.apply_delta(series.delta(DATE_1, DATE_2), annotator)
        full = build_index(series.at(DATE_2), annotator)
        assert index.content_signature() == full.content_signature()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
