"""Multi-process stress proof for the serving fleet's swap guarantees.

``tests/test_serving_stress.py`` proves the single-process
:class:`SiblingQueryService` invariants with threads; this suite
re-proves them across *OS process* boundaries, the way the fleet
actually runs:

* client **processes** hammer the fleet's one SO_REUSEPORT port with
  point and batch queries over keep-alive connections, recording every
  answer's snapshot dates and a system-monotonic completion time;
* the test body plays publisher: it appends 40+ distinguishable
  generations to the shared ``.sparch`` archive (each snapshot date
  encodes its generation number) and broadcasts a swap after each
  commit, recording a monotonic timestamp *before* each append starts;
* halfway through the storm one worker is ``SIGKILL``-ed under full
  load; the supervisor must restart it **on the newest committed
  generation**, and once the restart is confirmed no client request
  may fail.

The invariants checked over every recorded answer:

* a batch answer carries exactly one snapshot date — no worker ever
  mixes two generations within one response;
* every answer's snapshot is a generation whose archive append had
  *started* before the response completed — an uncommitted or
  never-published generation can never be served (``time.monotonic``
  is system-wide on the platforms the fleet supports, so publisher
  and client timestamps are directly comparable);
* connection failures happen only inside the kill window — zero
  failed requests after the bounded drain, with real traffic after it.
"""

import datetime
import json
import multiprocessing
import os
import signal
import socket
import time
from http.client import HTTPConnection, HTTPException

import pytest

from repro.nettypes.prefix import Prefix
from repro.publish import PublishedPair
from repro.serving.fleet import FleetError, ServiceSource, ServingFleet
from repro.serving.index import SiblingLookupIndex
from repro.storage.index_io import append_index

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="serving fleet requires SO_REUSEPORT",
)

#: Worker cap so CI's 2-core runners stay deterministic
#: (the fleet-stress job pins REPRO_FLEET_WORKERS=2).
FLEET_WORKERS = max(1, int(os.environ.get("REPRO_FLEET_WORKERS", "2")))

CLIENTS = 2
GENERATIONS = 40

V4 = Prefix.parse("192.0.2.0/24")
V6 = Prefix.parse("2001:db8::/32")
BASE_DATE = datetime.date(2024, 1, 1)

#: Hits on both families plus guaranteed misses, with repeats so the
#: per-generation answer cache is exercised too.
QUERIES = [
    "192.0.2.7",
    "192.0.2.9",
    "2001:db8::1",
    "203.0.113.5",
    "192.0.2.7",
    "2001:db8:dead::beef",
    "198.51.100.1",
] * 2

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def _snapshot_of(generation: int) -> str:
    return (BASE_DATE + datetime.timedelta(days=generation)).isoformat()


def _make_index(generation: int) -> SiblingLookupIndex:
    """One pair whose jaccard and snapshot date encode *generation*."""
    pair = PublishedPair(
        v4_prefix=V4,
        v6_prefix=V6,
        jaccard=round(0.001 * generation, 6),
        shared_domains=generation + 1,
        v4_domains=generation + 2,
        v6_domains=generation + 3,
        same_org=None,
        rov_status=None,
    )
    return SiblingLookupIndex.from_pairs(
        [pair], datetime.date.fromisoformat(_snapshot_of(generation))
    )


def _storm_client(url: str, stop, out_path: str) -> None:
    """Client process body: alternate point/batch load, record answers.

    Each record is ``{"t": monotonic completion time, "kind": ...,
    "ok": bool, "snapshots": sorted distinct snapshot dates}``; a
    connection-level failure is recorded with ``ok: False`` and *no*
    retry, so the kill window is visible to the assertions.
    """
    host, port = url.removeprefix("http://").split(":")
    records = []
    connection = None
    turn = 0
    while not stop.is_set():
        kind = "batch" if turn % 3 == 0 else "point"
        turn += 1
        try:
            if connection is None:
                connection = HTTPConnection(host, int(port), timeout=10)
            if kind == "point":
                connection.request(
                    "GET", "/v1/lookup?ip=" + QUERIES[turn % len(QUERIES)]
                )
            else:
                connection.request(
                    "POST",
                    "/v1/batch",
                    body=json.dumps({"queries": QUERIES}),
                    headers={"Content-Type": "application/json"},
                )
            body = connection.getresponse().read()
        except (OSError, HTTPException):
            if connection is not None:
                connection.close()
            connection = None
            records.append(
                {"t": time.monotonic(), "kind": kind, "ok": False}
            )
            continue
        done = time.monotonic()
        payload = json.loads(body)
        rows = payload["results"] if kind == "batch" else [payload]
        records.append(
            {
                "t": done,
                "kind": kind,
                "ok": True,
                "snapshots": sorted(
                    {row["snapshot"] for row in rows if "snapshot" in row}
                ),
            }
        )
    if connection is not None:
        connection.close()
    with open(out_path, "w") as stream:
        json.dump(records, stream)


def _await_restart(fleet: ServingFleet, minimum: int, deadline: float) -> dict:
    """Fleet status once every worker is alive and restarts >= minimum."""
    while True:
        status = fleet.status()
        if status["restarts"] >= minimum and all(
            worker.get("alive") for worker in status["workers"]
        ):
            return status
        if time.monotonic() > deadline:
            raise AssertionError(
                f"fleet did not recover in time: {status}"
            )
        time.sleep(0.05)


def test_swap_storm_with_worker_kill(tmp_path):
    """The headline stress: 40-generation storm + SIGKILL under load."""
    archive = tmp_path / "storm.sparch"
    commit_started = {_snapshot_of(0): time.monotonic()}
    append_index(archive, _make_index(0))

    stop = _CTX.Event()
    out_paths = [str(tmp_path / f"client-{slot}.json") for slot in range(CLIENTS)]
    clients = []
    killed_at = drained_at = None
    with ServingFleet(
        ServiceSource.archive(archive), workers=FLEET_WORKERS
    ) as fleet:
        fleet.start()
        clients = [
            _CTX.Process(
                target=_storm_client, args=(fleet.url, stop, out_path)
            )
            for out_path in out_paths
        ]
        for client in clients:
            client.start()
        victim_pid = fleet.status()["workers"][0]["pid"]

        for generation in range(1, GENERATIONS + 1):
            date = _snapshot_of(generation)
            commit_started[date] = time.monotonic()
            append_index(archive, _make_index(generation))
            for ack in fleet.broadcast_swap():
                # A swap ack may only ever name the generation just
                # committed (never a future or uncommitted one).
                assert ack["snapshot"] == date, ack
            if generation == GENERATIONS // 2 and FLEET_WORKERS > 1:
                os.kill(victim_pid, signal.SIGKILL)
                killed_at = time.monotonic()
                status = _await_restart(
                    fleet, minimum=1, deadline=killed_at + 30
                )
                drained_at = time.monotonic()
                # The restarted worker came back on the newest
                # *committed* generation — never stale, never ahead.
                restarted = next(
                    worker
                    for worker in status["workers"]
                    if worker["pid"] != victim_pid
                    and worker["slot"] == 0
                )
                assert restarted["snapshot"] == date, restarted

        time.sleep(0.3)  # settled traffic against the final generation
        stop.set()
        for client in clients:
            client.join(timeout=30)
            assert client.exitcode == 0, "storm client crashed"

        final = fleet.status()
        assert all(worker["alive"] for worker in final["workers"])
        assert {worker["snapshot"] for worker in final["workers"]} == {
            _snapshot_of(GENERATIONS)
        }
        if FLEET_WORKERS > 1:
            assert final["restarts"] >= 1

    records = []
    for out_path in out_paths:
        with open(out_path) as stream:
            records.extend(json.load(stream))
    okay = [record for record in records if record["ok"]]
    failed = [record for record in records if not record["ok"]]
    assert len(okay) > 50, "storm produced too little verified traffic"

    for record in okay:
        # Batch answers are generation-consistent; point answers carry
        # exactly one snapshot by construction.
        assert len(record["snapshots"]) == 1, (
            f"mixed-generation answer: {record}"
        )
        snapshot = record["snapshots"][0]
        assert snapshot in commit_started, (
            f"answer from unknown generation {snapshot!r}"
        )
        assert commit_started[snapshot] <= record["t"], (
            f"generation {snapshot} served before its commit started "
            f"({commit_started[snapshot]:.6f} > {record['t']:.6f})"
        )

    if killed_at is not None:
        for record in failed:
            assert record["t"] <= drained_at, (
                f"request failed after the restart drain: {record}"
            )
        assert any(record["t"] > drained_at for record in okay), (
            "no verified traffic after the restart drain"
        )
    else:
        assert not failed, failed[:3]


def test_restarted_worker_attaches_newest_generation(tmp_path):
    """A plain (no-load) kill: the replacement serves current state."""
    archive = tmp_path / "restart.sparch"
    append_index(archive, _make_index(0))
    with ServingFleet(
        ServiceSource.archive(archive), workers=FLEET_WORKERS
    ) as fleet:
        fleet.start()
        append_index(archive, _make_index(1))
        acks = fleet.broadcast_swap()
        assert len(acks) == FLEET_WORKERS
        assert {ack["snapshot"] for ack in acks} == {_snapshot_of(1)}

        victim = fleet.status()["workers"][-1]
        os.kill(victim["pid"], signal.SIGKILL)
        status = _await_restart(
            fleet, minimum=1, deadline=time.monotonic() + 30
        )
        replacement = status["workers"][victim["slot"]]
        assert replacement["pid"] != victim["pid"]
        assert replacement["snapshot"] == _snapshot_of(1)
        # The restart is attributed to the killed slot, and the
        # replacement rejoined current (no swap lag).
        assert replacement["restarts"] >= 1
        assert replacement["lag"] == 0
        untouched = [
            worker
            for worker in status["workers"]
            if worker["slot"] != victim["slot"]
        ]
        assert all(worker["restarts"] == 0 for worker in untouched)


def test_fleet_serves_on_one_port_across_workers(tmp_path):
    """All workers answer on the same port with identical answers."""
    archive = tmp_path / "port.sparch"
    append_index(archive, _make_index(3))
    with ServingFleet(
        ServiceSource.archive(archive), workers=FLEET_WORKERS
    ) as fleet:
        fleet.start()
        host, port = fleet.host, fleet.port
        answers = set()
        # Fresh connection per request: SO_REUSEPORT spreads these
        # across workers; every answer must be identical regardless.
        for _ in range(8):
            connection = HTTPConnection(host, port, timeout=10)
            try:
                connection.request("GET", "/v1/lookup?ip=192.0.2.7")
                payload = json.loads(connection.getresponse().read())
            finally:
                connection.close()
            assert payload["found"] is True
            answers.add(payload["snapshot"])
        assert answers == {_snapshot_of(3)}
        status = fleet.status()
        assert len(status["workers"]) == FLEET_WORKERS
        assert all(worker["alive"] for worker in status["workers"])
        # Telemetry keys: a freshly started fleet has zero restarts and
        # zero swap lag, and every row reports its generation.
        assert status["swap_lag"] == 0
        assert status["uptime_seconds"] > 0.0
        assert status["control_port"] is not None
        for worker in status["workers"]:
            assert worker["restarts"] == 0
            assert worker["lag"] == 0
            assert worker["generation"] == status["generation"]


def test_serve_series_fleet_pipeline(tmp_path, tiny_universe):
    """The pipeline bridge: detect a series into an archive, serve it."""
    from repro.analysis.pipeline import serve_series_fleet
    from repro.dates import REFERENCE_DATE

    dates = [REFERENCE_DATE - datetime.timedelta(days=1), REFERENCE_DATE]
    archive = tmp_path / "series.sparch"
    fleet = serve_series_fleet(
        tiny_universe, dates, archive, serve_workers=FLEET_WORKERS
    )
    try:
        status = fleet.status()
        assert len(status["workers"]) == FLEET_WORKERS
        assert all(worker["alive"] for worker in status["workers"])
        connection = HTTPConnection(fleet.host, fleet.port, timeout=10)
        try:
            connection.request("GET", "/v1/snapshot")
            payload = json.loads(connection.getresponse().read())
        finally:
            connection.close()
        assert payload["index"]["snapshot"] == REFERENCE_DATE.isoformat()
        assert payload["index"]["pairs"] > 0
    finally:
        fleet.stop()


def test_fleet_rejects_bad_configuration(tmp_path):
    with pytest.raises(FleetError):
        ServingFleet(ServiceSource.archive(tmp_path / "x.sparch"), workers=0)
    fleet = ServingFleet(ServiceSource.archive(tmp_path / "x.sparch"))
    with pytest.raises(FleetError):
        fleet.port  # not started
    with pytest.raises(FleetError):
        ServiceSource("bogus", "nope").build()


def test_fleet_start_fails_cleanly_on_missing_archive(tmp_path):
    """A worker that cannot attach dies; start() raises, no leaks."""
    fleet = ServingFleet(
        ServiceSource.archive(tmp_path / "missing.sparch"),
        workers=1,
        ready_timeout=10,
    )
    with pytest.raises(FleetError):
        fleet.start()
    fleet.stop()  # idempotent on the failed fleet


def test_cli_serve_workers_validation(tmp_path, capsys):
    from repro.cli import main

    csv_path = tmp_path / "pairs.csv"
    csv_path.write_text("v4_prefix,v6_prefix\n")
    assert main(["serve", str(csv_path), "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err
    assert main(["serve", str(csv_path), "--workers", "2"]) == 2
    assert "--emit-index" in capsys.readouterr().err
