"""Tests for as2org, ASdb, and hypergiant/CDN registries."""

import datetime

import pytest

from repro.orgs.as2org import CHEN_DATASET_EPOCH, As2Org, As2OrgArchive
from repro.orgs.asdb import BUSINESS_CATEGORIES, AsdbDataset, BusinessCategory
from repro.orgs.hypergiants import (
    HGCDN_ORGS,
    DeploymentStyle,
    HgCdnClass,
    HgCdnRegistry,
)


class TestAs2Org:
    def test_assign_and_lookup(self):
        mapping = As2Org([(64500, "ExampleNet"), (64501, "ExampleNet")])
        assert mapping.org_of(64500) == "ExampleNet"
        assert mapping.org_of(9999) is None
        assert mapping.asns_of("ExampleNet") == frozenset({64500, 64501})

    def test_same_org(self):
        mapping = As2Org([(64500, "A"), (64501, "A"), (64502, "B")])
        assert mapping.same_org(64500, 64500)  # same ASN always
        assert mapping.same_org(64500, 64501)  # sibling ASes
        assert not mapping.same_org(64500, 64502)
        # Unmapped ASNs are only "same org" with themselves.
        assert mapping.same_org(777, 777)
        assert not mapping.same_org(777, 778)

    def test_siblings(self):
        mapping = As2Org([(64500, "A"), (64501, "A")])
        assert mapping.siblings_of(64500) == frozenset({64500, 64501})
        assert mapping.siblings_of(12345) == frozenset({12345})

    def test_reassign_moves_org(self):
        mapping = As2Org([(64500, "A")])
        mapping.assign(64500, "B")
        assert mapping.org_of(64500) == "B"
        assert mapping.asns_of("A") == frozenset()
        assert list(mapping.organizations()) == ["B"]

    def test_invalid_asn(self):
        with pytest.raises(ValueError):
            As2Org([(-1, "X")])

    def test_len_contains(self):
        mapping = As2Org([(64500, "A")])
        assert len(mapping) == 1 and 64500 in mapping


class TestAs2OrgArchive:
    def test_epoch_switch(self):
        archive = As2OrgArchive()
        caida = As2Org([(64500, "CAIDA-VIEW")])
        chen = As2Org([(64500, "CHEN-VIEW")])
        archive.add(datetime.date(2020, 9, 1), caida)
        archive.add(CHEN_DATASET_EPOCH, chen)
        assert archive.at(datetime.date(2021, 5, 1)).org_of(64500) == "CAIDA-VIEW"
        assert archive.at(datetime.date(2023, 5, 1)).org_of(64500) == "CHEN-VIEW"
        assert len(archive) == 2

    def test_before_first_raises(self):
        archive = As2OrgArchive()
        archive.add(datetime.date(2020, 9, 1), As2Org())
        with pytest.raises(LookupError):
            archive.at(datetime.date(2019, 1, 1))

    def test_duplicate_rejected(self):
        archive = As2OrgArchive()
        archive.add(datetime.date(2020, 9, 1), As2Org())
        with pytest.raises(ValueError):
            archive.add(datetime.date(2020, 9, 1), As2Org())


class TestAsdb:
    def test_seventeen_categories(self):
        assert len(BUSINESS_CATEGORIES) == 17
        assert BusinessCategory.IT in BUSINESS_CATEGORIES

    def test_classify_and_query(self):
        dataset = AsdbDataset([(64500, [BusinessCategory.IT])])
        assert dataset.categories_of(64500) == frozenset({BusinessCategory.IT})
        assert dataset.categories_of(1) == frozenset()
        assert 64500 in dataset and len(dataset) == 1

    def test_single_category_filter(self):
        dataset = AsdbDataset(
            [
                (1, [BusinessCategory.IT]),
                (2, [BusinessCategory.IT, BusinessCategory.FINANCE]),
            ]
        )
        assert dataset.single_category_of(1) is BusinessCategory.IT
        assert dataset.single_category_of(2) is None
        assert dataset.single_category_of(3) is None
        assert dataset.single_category_share() == pytest.approx(0.5)

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError):
            AsdbDataset([(1, [])])


class TestHgCdn:
    def test_paper_has_24_orgs(self):
        assert len(HGCDN_ORGS) == 24

    def test_registry_membership(self):
        registry = HgCdnRegistry()
        assert registry.is_hgcdn("Amazon")
        assert "Cloudflare" in registry
        assert not registry.is_hgcdn("Tiny ISP 42")
        assert registry.get("Nobody") is None

    def test_classifications(self):
        registry = HgCdnRegistry()
        assert registry.classification("Facebook") is HgCdnClass.HYPERGIANT
        assert registry.classification("Fastly") is HgCdnClass.CDN
        assert registry.classification("Google") is HgCdnClass.BOTH
        assert registry.classification("Nobody") is None

    def test_agility_styles_match_paper(self):
        # Cloudflare and Akamai are the low-Jaccard agility networks.
        registry = HgCdnRegistry()
        assert registry.get("Cloudflare").style is DeploymentStyle.AGILITY
        assert registry.get("Akamai").style is DeploymentStyle.AGILITY
        assert registry.get("Google").style is DeploymentStyle.ALIGNED

    def test_weight_order(self):
        by_weight = HgCdnRegistry().by_weight()
        assert by_weight[0].name == "Amazon"
        assert by_weight[-1].name == "Internap"
