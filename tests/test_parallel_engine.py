"""Determinism, edge cases, and crash paths of the sharded engine.

The property-based suite (``test_differential_engines.py``) proves the
sharded engine agrees with the single-process engines on randomized
inputs; this module pins the operational contract around it:

* worker-count invariance — 1, 2, and ``cpu_count`` shards produce
  identical output (pair-counts compared as mappings; iteration order
  is explicitly not part of the contract);
* degenerate inputs — empty index, a single co-occurrence row, more
  shards than v4 rows (guaranteed empty shards);
* the automatic columnar fallback below the pair-row threshold;
* a failing worker surfaces a :class:`ShardedDetectionError` that names
  the shard, instead of hanging the run;
* registry / CLI wiring — ``get_substrate("sharded")``, the ``workers``
  pass-through, and byte-identical ``detect`` CSV exports between
  ``--substrate columnar`` and ``--substrate sharded``.
"""

import os

import pytest

from conftest import as_mapping
from repro.cli import main
from repro.core.domainsets import PrefixDomainIndex, build_index
from repro.core.parallel import (
    DEFAULT_MIN_PAIR_ROWS,
    ShardedDetectionError,
    ShardedSubstrate,
    build_shard_payloads,
    estimate_pair_rows,
)
from repro.core.substrate import ColumnarSubstrate, get_substrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix


@pytest.fixture(scope="module")
def tiny_index(tiny_universe):
    """One detection-ready index shared by every test here."""
    return build_index(
        tiny_universe.snapshot_at(REFERENCE_DATE),
        tiny_universe.annotator_at(REFERENCE_DATE),
    )


_as_mapping = as_mapping


def _single_row_index() -> PrefixDomainIndex:
    """One domain, one v4 prefix, one v6 prefix: a single packed row."""
    index = PrefixDomainIndex(date=REFERENCE_DATE)
    v4 = Prefix.from_address(IPV4, 10 << 24, 24)
    v6 = Prefix.from_address(IPV6, 0x2001_0DB8 << 96, 48)
    index.domain_v4_prefixes["only.example"] = {v4}
    index.domain_v6_prefixes["only.example"] = {v6}
    index.v4_domains[v4] = {"only.example"}
    index.v6_domains[v6] = {"only.example"}
    return index


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_worker_count_invariance(tiny_index):
    """1, 2, cpu_count, and 5 workers give identical results.

    Iteration order of the merged counts is NOT part of the contract
    (workers=1 takes the columnar fallback with its own order), so the
    counts are compared as mappings — exactly how ``select`` consumes
    them.
    """
    counts_by_workers = {}
    results_by_workers = {}
    for workers in sorted({1, 2, os.cpu_count() or 1, 5}):
        engine = ShardedSubstrate(workers=workers, min_pair_rows=0)
        results_by_workers[workers] = _as_mapping(engine.select(tiny_index))
        state = engine.prepare(tiny_index)
        counts_by_workers[workers] = dict(engine.pair_counts(state))

    baseline_result = results_by_workers.popitem()[1]
    assert all(
        result == baseline_result for result in results_by_workers.values()
    )
    baseline_counts = counts_by_workers[1]
    assert all(
        counts == baseline_counts for counts in counts_by_workers.values()
    )


def test_repeat_runs_are_stable(tiny_index):
    """The same engine re-run produces the same answer (cached state)."""
    engine = ShardedSubstrate(workers=2, min_pair_rows=0)
    first = _as_mapping(engine.select(tiny_index))
    second = _as_mapping(engine.select(tiny_index))
    assert first == second


# ---------------------------------------------------------------------------
# Edge cases
# ---------------------------------------------------------------------------


def test_empty_index():
    """No domains at all: empty payloads, empty result, no crash."""
    engine = ShardedSubstrate(workers=2, min_pair_rows=0)
    result = engine.select(PrefixDomainIndex(date=REFERENCE_DATE))
    assert len(result) == 0
    assert engine.last_run["mode"] == "sharded"


def test_single_row_index():
    """One packed row still round-trips through the worker pool."""
    engine = ShardedSubstrate(workers=2, min_pair_rows=0)
    result = engine.select(_single_row_index())
    assert engine.last_run == {
        "mode": "sharded",
        "workers": 2,
        "shards": 2,
        "pair_rows": 1,
    }
    [pair] = list(result)
    assert pair.similarity == 1.0
    assert pair.shared_domains == frozenset({"only.example"})


def test_more_shards_than_rows_leaves_empty_shards(tiny_index):
    """Empty shards are dispatched and contribute nothing."""
    index = _single_row_index()
    engine = ShardedSubstrate(workers=4, min_pair_rows=0)
    state = engine.prepare(index)
    payloads = build_shard_payloads(state, 4)
    populated = [p for p in payloads if len(p[1])]
    assert len(payloads) == 4 and len(populated) == 1
    assert _as_mapping(engine.select(index)) == _as_mapping(
        ColumnarSubstrate().select(index)
    )


# ---------------------------------------------------------------------------
# Fallback
# ---------------------------------------------------------------------------


def test_fallback_below_threshold(tiny_index):
    """Small accumulations run single-process, results unchanged."""
    engine = ShardedSubstrate(workers=2)  # default threshold
    state = engine.prepare(tiny_index)
    assert estimate_pair_rows(state) < DEFAULT_MIN_PAIR_ROWS
    result = engine.select(tiny_index)
    assert engine.last_run["mode"] == "fallback"
    assert engine.last_run["pair_rows"] == estimate_pair_rows(state)
    assert _as_mapping(result) == _as_mapping(
        ColumnarSubstrate().select(tiny_index)
    )


def test_fallback_on_single_worker(tiny_index):
    """workers=1 never pays for a pool, even with the threshold at 0."""
    engine = ShardedSubstrate(workers=1, min_pair_rows=0)
    engine.select(tiny_index)
    assert engine.last_run["mode"] == "fallback"


def test_workers_zero_means_cpu_count():
    assert ShardedSubstrate(workers=0).effective_workers() == (
        os.cpu_count() or 1
    )
    assert ShardedSubstrate(workers=3).effective_workers() == 3


# ---------------------------------------------------------------------------
# Crash path
# ---------------------------------------------------------------------------


def test_failing_worker_raises_clear_error(tiny_index):
    """A crashed shard worker becomes a ShardedDetectionError, not a hang."""
    engine = ShardedSubstrate(workers=2, min_pair_rows=0)
    engine._fail_shard_for_testing = 1
    with pytest.raises(ShardedDetectionError, match="shard 1"):
        engine.select(tiny_index)
    # The engine recovers once the fault is removed.
    engine._fail_shard_for_testing = None
    assert _as_mapping(engine.select(tiny_index)) == _as_mapping(
        ColumnarSubstrate().select(tiny_index)
    )


# ---------------------------------------------------------------------------
# Registry / CLI wiring
# ---------------------------------------------------------------------------


def test_get_substrate_configures_workers():
    engine = get_substrate("sharded", workers=2)
    assert isinstance(engine, ShardedSubstrate)
    assert engine.workers == 2
    # Name resolution without an explicit count resets to the class
    # default -- one caller's worker count never leaks into the next.
    again = get_substrate("sharded")
    assert again is engine  # shared instance
    assert again.workers == ShardedSubstrate.DEFAULT_WORKERS
    # ... but a caller-owned instance keeps its configuration.
    own = ShardedSubstrate(workers=3)
    assert get_substrate(own) is own and own.workers == 3
    # workers passes through harmlessly for single-process engines.
    assert not hasattr(get_substrate("columnar", workers=2), "workers")


def test_cli_detect_output_bit_identical(tmp_path):
    """`detect --substrate sharded` CSV == `--substrate columnar` CSV."""
    columnar_out = tmp_path / "columnar.csv"
    sharded_out = tmp_path / "sharded.csv"
    assert (
        main(
            [
                "detect",
                "--scenario",
                "tiny",
                "--substrate",
                "columnar",
                "--format",
                "csv",
                "-o",
                str(columnar_out),
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "detect",
                "--scenario",
                "tiny",
                "--substrate",
                "sharded",
                "--workers",
                "2",
                "--format",
                "csv",
                "-o",
                str(sharded_out),
            ]
        )
        == 0
    )
    assert columnar_out.read_text() == sharded_out.read_text()


def test_cli_detect_series_sharded(tmp_path, capsys):
    """The longitudinal CLI accepts the sharded engine + worker count."""
    out = tmp_path / "series.csv"
    code = main(
        [
            "detect-series",
            "--scenario",
            "tiny",
            "--offsets",
            "stability",
            "--substrate",
            "sharded",
            "--workers",
            "2",
            "--format",
            "csv",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    lines = out.read_text().strip().splitlines()
    assert lines[0] == "label,date,pairs,perfect_share,mean_jaccard"
    assert len(lines) == 8  # header + 7 stability offsets
    assert lines[1].startswith("Day 0,")
