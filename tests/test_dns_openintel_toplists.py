"""Tests for snapshots, series, toplist schedule, and the calendar."""

import datetime

import pytest

from repro.dates import (
    REFERENCE_DATE,
    add_months,
    month_range,
    months_between,
    second_wednesday,
    snapshot_dates,
)
from repro.dns.openintel import DnsSnapshot, DomainObservation, SnapshotSeries
from repro.dns.records import ResourceRecord
from repro.dns.toplists import (
    FR_CCTLD_ADDED,
    Toplist,
    ToplistSchedule,
    ToplistWindow,
)
from repro.dns.zone import Zone
from repro.nettypes.addr import parse_ipv4, parse_ipv6


class TestCalendar:
    def test_second_wednesday_examples(self):
        # September 11, 2024 is the paper's reference snapshot date.
        assert second_wednesday(2024, 9) == datetime.date(2024, 9, 11)
        assert second_wednesday(2020, 9) == datetime.date(2020, 9, 9)
        assert REFERENCE_DATE == datetime.date(2024, 9, 11)

    def test_49_snapshots_in_study_window(self):
        dates = snapshot_dates()
        assert len(dates) == 49
        assert dates[0].year == 2020 and dates[-1].year == 2024
        assert all(d.weekday() == 2 for d in dates)  # all Wednesdays
        assert all(8 <= d.day <= 14 for d in dates)  # all second ones

    def test_month_range_inclusive(self):
        months = list(month_range((2020, 11), (2021, 2)))
        assert months == [(2020, 11), (2020, 12), (2021, 1), (2021, 2)]

    def test_months_between(self):
        assert months_between(datetime.date(2020, 9, 9), REFERENCE_DATE) == 48

    def test_add_months_clamps(self):
        assert add_months(datetime.date(2024, 1, 31), 1) == datetime.date(2024, 2, 29)
        assert add_months(datetime.date(2024, 3, 15), -12) == datetime.date(2023, 3, 15)


class TestSnapshot:
    def build_zone(self):
        zone = Zone()
        zone.add(ResourceRecord.a("ds.example.com", parse_ipv4("192.0.2.1")))
        zone.add(ResourceRecord.aaaa("ds.example.com", parse_ipv6("2001:db8::1")))
        zone.add(ResourceRecord.a("v4.example.com", parse_ipv4("192.0.2.2")))
        zone.add(ResourceRecord.cname("alias.example.com", "ds.example.com"))
        return zone

    def test_measure_groups_by_final_name(self):
        snapshot = DnsSnapshot.measure(
            self.build_zone(),
            ["ds.example.com", "alias.example.com", "v4.example.com", "gone.example.com"],
            datetime.date(2024, 9, 11),
        )
        # alias converges onto ds.example.com; gone resolves to nothing.
        assert snapshot.domain_count == 2
        assert snapshot.dual_stack_count == 1
        assert snapshot.get("alias.example.com") is None
        ds = snapshot.get("ds.example.com")
        assert ds is not None and ds.is_dual_stack

    def test_merge_on_convergence(self):
        zone = self.build_zone()
        zone.add(ResourceRecord.cname("other.example.net", "ds.example.com"))
        snapshot = DnsSnapshot.measure(
            zone, ["alias.example.com", "other.example.net"], datetime.date(2024, 9, 11)
        )
        assert snapshot.domain_count == 1

    def test_dual_stack_share(self):
        snapshot = DnsSnapshot.measure(
            self.build_zone(),
            ["ds.example.com", "v4.example.com"],
            datetime.date(2024, 9, 11),
        )
        assert snapshot.dual_stack_share == pytest.approx(0.5)

    def test_unique_addresses(self):
        snapshot = DnsSnapshot.measure(
            self.build_zone(),
            ["ds.example.com", "v4.example.com"],
            datetime.date(2024, 9, 11),
        )
        v4, v6 = snapshot.unique_addresses()
        assert len(v4) == 2 and len(v6) == 1

    def test_observation_properties(self):
        both = DomainObservation("a.example.com", (1,), (2,))
        v4only = DomainObservation("b.example.com", (1,), ())
        neither = DomainObservation("c.example.com", (), ())
        assert both.is_dual_stack and both.has_any_address
        assert not v4only.is_dual_stack and v4only.has_any_address
        assert not neither.has_any_address


class TestSeries:
    def make(self, *dates):
        return SnapshotSeries(DnsSnapshot(d) for d in dates)

    def test_ordering_and_access(self):
        d1, d2 = datetime.date(2023, 1, 11), datetime.date(2024, 1, 10)
        series = self.make(d2, d1)
        assert series.dates() == [d1, d2]
        assert series.at(d1).date == d1
        assert series.latest().date == d2
        assert len(series) == 2
        assert d1 in series

    def test_duplicate_rejected(self):
        d = datetime.date(2024, 1, 10)
        series = self.make(d)
        with pytest.raises(ValueError):
            series.add(DnsSnapshot(d))

    def test_nearest(self):
        d1, d2 = datetime.date(2024, 1, 10), datetime.date(2024, 3, 13)
        series = self.make(d1, d2)
        assert series.nearest(datetime.date(2024, 1, 20)).date == d1
        assert series.nearest(datetime.date(2024, 3, 1)).date == d2
        assert series.nearest(datetime.date(2020, 1, 1)).date == d1

    def test_empty_series_errors(self):
        series = SnapshotSeries()
        with pytest.raises(LookupError):
            series.latest()
        with pytest.raises(LookupError):
            series.nearest(datetime.date(2024, 1, 1))


class TestToplistSchedule:
    def test_paper_events(self):
        schedule = ToplistSchedule()
        sep_2020 = datetime.date(2020, 9, 9)
        active = schedule.active(sep_2020)
        assert Toplist.ALEXA in active and Toplist.UMBRELLA in active
        assert Toplist.TRANCO not in active
        assert Toplist.CLOUDFLARE_RADAR not in active

    def test_tranco_added_sept_2022(self):
        schedule = ToplistSchedule()
        assert Toplist.TRANCO not in schedule.active(datetime.date(2022, 8, 10))
        assert Toplist.TRANCO in schedule.active(datetime.date(2022, 9, 14))

    def test_alexa_removed_may_2023(self):
        schedule = ToplistSchedule()
        assert Toplist.ALEXA in schedule.active(datetime.date(2023, 4, 12))
        assert Toplist.ALEXA not in schedule.active(datetime.date(2023, 5, 10))

    def test_events_sorted(self):
        events = ToplistSchedule().events()
        assert events == sorted(events)
        assert any(".fr" in desc for _, desc in events)
        assert FR_CCTLD_ADDED == datetime.date(2022, 8, 1)

    def test_window_for(self):
        schedule = ToplistSchedule()
        window = schedule.window_for(Toplist.ALEXA)
        assert window.removed == datetime.date(2023, 5, 1)
        with pytest.raises(KeyError):
            ToplistSchedule(windows=()).window_for(Toplist.ALEXA)

    def test_custom_window(self):
        window = ToplistWindow(
            Toplist.TRANCO,
            added=datetime.date(2022, 1, 1),
            removed=datetime.date(2023, 1, 1),
        )
        assert not window.active_on(datetime.date(2021, 12, 31))
        assert window.active_on(datetime.date(2022, 6, 1))
        assert not window.active_on(datetime.date(2023, 1, 1))
