#!/usr/bin/env python3
"""Serving demo: from detection output to an answering query service.

Walks the full serving path the paper motivates for downstream
consumers (blocklist/geolocation transfer at interactive rates):

1. detect sibling prefixes on two snapshot dates,
2. compile each snapshot into an immutable ``SiblingLookupIndex``,
3. save/load the binary index artifact (what ``detect --emit-index``
   emits and ``repro serve`` loads),
4. stand up a ``SiblingQueryService``, answer point + batch queries,
5. hot-swap to the newer snapshot and show the answers roll forward.

Run:  python examples/serving_demo.py [scenario]
"""

import datetime
import sys
import tempfile

from repro.analysis.pipeline import detect_at
from repro.dates import REFERENCE_DATE
from repro.serving import (
    SiblingLookupIndex,
    SiblingQueryService,
    load_index,
    save_index,
)
from repro.synth import build_universe


def main() -> None:
    scenario = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    print(f"Building the {scenario!r} synthetic universe ...")
    universe = build_universe(scenario)

    week_ago = REFERENCE_DATE - datetime.timedelta(days=7)
    print(f"\nDetecting siblings on {week_ago} and {REFERENCE_DATE} ...")
    old_siblings, _ = detect_at(universe, week_ago)
    new_siblings, _ = detect_at(universe, REFERENCE_DATE)
    print(f"  {len(old_siblings)} pairs @ {week_ago}, "
          f"{len(new_siblings)} pairs @ {REFERENCE_DATE}")

    print("\nCompiling lookup indexes ...")
    old_index = SiblingLookupIndex.from_siblings(old_siblings)
    new_index = SiblingLookupIndex.from_siblings(new_siblings)
    print(f"  {old_index}")
    print(f"  {new_index}")

    with tempfile.NamedTemporaryFile(suffix=".sibidx") as artifact:
        size = save_index(new_index, artifact.name)
        reloaded = load_index(artifact.name)
        print(f"\nBinary artifact: {size} bytes; reload matches: "
              f"{reloaded.pairs == new_index.pairs}")

    print("\nServing the older snapshot ...")
    service = SiblingQueryService(old_index)
    probe = next(iter(new_index)).v4_prefix
    inside = probe.network_text  # the network address, inside the prefix
    answer = service.lookup(inside)
    print(f"  lookup({inside}) -> found={answer['found']} "
          f"snapshot={answer['snapshot']}")

    batch = service.batch([inside, "203.0.113.99", "not-an-ip"])
    print(f"  batch of 3 -> "
          f"{[row['found'] for row in batch]} (malformed entry in-band)")

    print("\nHot-swapping to the newer snapshot ...")
    service.swap(new_index)
    answer = service.lookup(inside)
    pairs = answer.get("pairs", [])
    print(f"  lookup({inside}) -> found={answer['found']} "
          f"snapshot={answer['snapshot']} pairs={len(pairs)}")
    if pairs:
        top = pairs[0]
        print(f"    best: {top['v4_prefix']} <-> {top['v6_prefix']} "
              f"J={top['jaccard']:.3f}")

    info = service.snapshot_info()
    print(f"\nService stats: generation={info['generation']} "
          f"queries={info['queries']} cache_hits={info['cache']['hits']}")
    print("\n(The same service is reachable over HTTP: "
          "python -m repro serve <index> --port 8080)")


if __name__ == "__main__":
    main()
