#!/usr/bin/env python3
"""Transfer an IPv4 blocklist to IPv6 via sibling prefixes.

The paper's Section 6 motivates sibling prefixes with exactly this use
case: "the adaption of IPv4 spam blocklists to IPv6, which closes the
backdoor for spammers to switch to IPv6 if they are blocked on IPv4."

This example builds a universe, picks a set of "abusive" IPv4 prefixes,
and uses high-confidence sibling pairs (Jaccard above a threshold) to
derive the IPv6 prefixes that should be blocked alongside them.

Run:  python examples/blocklist_transfer.py
"""

from repro.core.detection import detect_with_index
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.dates import REFERENCE_DATE
from repro.nettypes.sets import PrefixSet
from repro.synth import build_universe

#: Only pairs at least this similar participate in the transfer.
MIN_JACCARD = 0.9


def main() -> None:
    universe = build_universe("tiny")
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    annotator = universe.annotator_at(REFERENCE_DATE)
    siblings, index = detect_with_index(snapshot, annotator)
    tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)

    # Pretend a reputation feed flagged every 7th detected IPv4 prefix.
    flagged_v4 = sorted(tuned.unique_v4_prefixes())[::7]
    blocklist_v4 = PrefixSet(flagged_v4)
    print(f"IPv4 blocklist: {len(blocklist_v4)} prefixes")

    # Sibling transfer: any pair whose IPv4 side is covered by the
    # blocklist and whose similarity is high contributes its IPv6 side.
    blocklist_v6 = PrefixSet()
    transfers = []
    for pair in tuned:
        if pair.similarity < MIN_JACCARD:
            continue
        if blocklist_v4.covers(pair.v4_prefix):
            blocklist_v6.add(pair.v6_prefix)
            transfers.append(pair)

    print(f"IPv6 prefixes derived via siblings: {len(blocklist_v6)}")
    print("\nSample transfers (v4 -> v6, similarity):")
    for pair in transfers[:8]:
        print(
            f"  {str(pair.v4_prefix):<22} -> {str(pair.v6_prefix):<28} "
            f"J={pair.similarity:.2f}"
        )

    # Aggregate the IPv6 side for router configuration.
    minimized = blocklist_v6.minimized()
    print(
        f"\nAfter aggregation: {len(minimized)} IPv6 filter entries "
        f"(from {len(blocklist_v6)})"
    )

    # Verify the transfer actually covers the flagged services' AAAA side.
    covered = missed = 0
    for pair in tuned:
        if blocklist_v4.covers(pair.v4_prefix) and pair.similarity >= MIN_JACCARD:
            for domain in pair.shared_domains:
                addresses = index.domain_v6_addresses.get(domain, ())
                for address in addresses:
                    if minimized.covers_address(6, address):
                        covered += 1
                    else:
                        missed += 1
    total = covered + missed
    if total:
        print(
            f"IPv6 addresses of blocked services covered: "
            f"{covered}/{total} ({covered / total:.1%})"
        )


if __name__ == "__main__":
    main()
