#!/usr/bin/env python3
"""Analyze sibling prefixes of hypergiants and CDNs (Section 4.7).

Reproduces the Figure 17 view: for each hypergiant/CDN organization, the
distribution of its sibling pairs' Jaccard values — showing the contrast
between aligned deployments (Google/Facebook-style, mostly perfect) and
addressing-agility networks (Cloudflare/Akamai-style, mostly dissimilar).

Run:  python examples/cdn_analysis.py
"""

import sys

from repro.analysis.hgcdn import hgcdn_distribution, hgcdn_heatmap
from repro.analysis.pipeline import tuned_at
from repro.dates import REFERENCE_DATE
from repro.orgs.hypergiants import DeploymentStyle
from repro.reporting.tables import format_heatmap
from repro.synth import build_universe


def main() -> None:
    scenario = sys.argv[1] if len(sys.argv) > 1 else "small"
    universe = build_universe(scenario)
    print("Detecting and tuning sibling prefixes ...")
    tuned, _ = tuned_at(universe, REFERENCE_DATE)

    distribution = hgcdn_distribution(universe, tuned, REFERENCE_DATE)
    heatmap = hgcdn_heatmap(distribution, min_pairs=5)
    print()
    print(format_heatmap(heatmap))

    print("\nPer-style summary (share of pairs with Jaccard >= 0.9):")
    by_style: dict[str, list[float]] = {}
    for org_name in distribution.rows:
        entry = universe.registry.get(org_name)
        if entry is None:
            continue
        share = distribution.high_similarity_share(org_name)
        by_style.setdefault(entry.style.value, []).append(share)
    for style in DeploymentStyle:
        shares = by_style.get(style.value)
        if shares:
            mean = sum(shares) / len(shares)
            print(f"  {style.value:<14} {mean:.1%} (n={len(shares)} orgs)")
    print(
        "\nReading: ALIGNED organizations concentrate in the 0.9-1.0 "
        "column; AGILITY networks (Cloudflare/Akamai style) spread over "
        "the low-similarity columns because domain-to-address bindings "
        "are decoupled per family."
    )


if __name__ == "__main__":
    main()
