#!/usr/bin/env python3
"""Quickstart: detect and tune sibling prefixes end to end.

Builds a small synthetic Internet, runs the paper's four-step detection
pipeline on the latest snapshot, refines the result with SP-Tuner, and
prints the headline numbers plus a few concrete pairs.

Run:  python examples/quickstart.py [scenario] [substrate]

The optional second argument picks the Step 3-4 engine: "columnar"
(default, interned posting lists) or "reference" (the paper-literal
dict-of-sets path).  Both produce identical results — see
docs/ARCHITECTURE.md.
"""

import sys

from repro.core.detection import detect_with_index
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.core.substrate import DEFAULT_SUBSTRATE
from repro.dates import REFERENCE_DATE
from repro.synth import build_universe


def main() -> None:
    scenario = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    substrate = sys.argv[2] if len(sys.argv) > 2 else DEFAULT_SUBSTRATE
    print(f"Building the {scenario!r} synthetic universe ...")
    universe = build_universe(scenario)
    print(f"  {universe}")

    print(f"\nMeasuring DNS on {REFERENCE_DATE} (OpenINTEL-style) ...")
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    print(
        f"  {snapshot.domain_count} domains resolved, "
        f"{snapshot.dual_stack_count} dual-stack "
        f"({snapshot.dual_stack_share:.1%})"
    )

    print(
        f"\nDetecting sibling prefixes (Jaccard best-match, "
        f"{substrate} substrate) ..."
    )
    annotator = universe.annotator_at(REFERENCE_DATE)
    siblings, index = detect_with_index(snapshot, annotator, substrate=substrate)
    print(
        f"  {len(siblings)} sibling pairs over "
        f"{len(siblings.unique_v4_prefixes())} IPv4 / "
        f"{len(siblings.unique_v6_prefixes())} IPv6 prefixes; "
        f"perfect matches: {siblings.perfect_match_share:.1%}"
    )

    print("\nApplying SP-Tuner (/28, /96) ...")
    tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
    print(
        f"  {len(tuned)} tuned pairs; perfect matches: "
        f"{tuned.perfect_match_share:.1%} "
        f"(was {siblings.perfect_match_share:.1%})"
    )

    print("\nA few tuned sibling pairs:")
    shown = 0
    for pair in sorted(tuned, key=lambda p: -len(p.shared_domains)):
        print(
            f"  {str(pair.v4_prefix):<22} <-> {str(pair.v6_prefix):<28} "
            f"J={pair.similarity:.2f}  domains={len(pair.shared_domains)}"
        )
        shown += 1
        if shown >= 8:
            break


if __name__ == "__main__":
    main()
