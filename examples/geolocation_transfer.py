#!/usr/bin/env python3
"""Transfer IPv4 geolocation to IPv6 via sibling prefixes.

The paper's introduction motivates exactly this: "geolocation database
providers using sibling prefixes to transfer geolocation information
from IPv4 to IPv6 ... thus improving geolocation across IP version
boundaries."

We build a good IPv4 geolocation database and a deliberately sparse IPv6
one (the real-world situation), then fill the IPv6 gaps through
high-similarity sibling pairs and measure accuracy against the ground
truth the universe records.

Run:  python examples/geolocation_transfer.py
"""

from repro.core.detection import detect_with_index
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.dates import REFERENCE_DATE
from repro.determinism import stable_uniform
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.trie import PatriciaTrie
from repro.synth import build_universe

#: How much of the deployed space each database knows natively.
V4_DB_COVERAGE = 0.95
V6_DB_COVERAGE = 0.35
MIN_TRANSFER_JACCARD = 0.9


def main() -> None:
    universe = build_universe("tiny")
    deployments = universe.ground_truth_deployments(REFERENCE_DATE)

    # Native databases: prefix → country, sampled from ground truth.
    v4_db: PatriciaTrie = PatriciaTrie(IPV4)
    v6_db: PatriciaTrie = PatriciaTrie(IPV6)
    for deployment in deployments:
        country = universe.org(deployment.org_id).country
        if stable_uniform("geo4", deployment.deployment_id) < V4_DB_COVERAGE:
            v4_db.insert(deployment.v4_announced, country)
        if stable_uniform("geo6", deployment.deployment_id) < V6_DB_COVERAGE:
            v6_db.insert(deployment.v6_announced, country)
    print(f"native coverage: v4 {len(v4_db)} prefixes, v6 {len(v6_db)} prefixes")

    siblings, index = detect_with_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )
    tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)

    # Transfer: a v6 prefix with no native entry inherits the country of
    # its high-similarity IPv4 sibling.
    transferred = 0
    for pair in tuned:
        if pair.similarity < MIN_TRANSFER_JACCARD:
            continue
        if v6_db.lookup(pair.v6_prefix) is not None:
            continue
        found = v4_db.lookup(pair.v4_prefix)
        if found is None:
            continue
        v6_db.insert(pair.v6_prefix, found[1])
        transferred += 1
    print(f"entries transferred v4 -> v6 via siblings: {transferred}")

    # Evaluate against ground truth at the address level.
    correct = wrong = missing = 0
    for deployment in deployments:
        truth = universe.org(deployment.org_id).country
        probe = deployment.v6_block.first_address + 1
        found = v6_db.lookup_address(probe)
        if found is None:
            missing += 1
        elif found[1] == truth:
            correct += 1
        else:
            wrong += 1
    total = correct + wrong + missing
    print(
        f"\nIPv6 geolocation after transfer over {total} deployments:\n"
        f"  correct: {correct} ({correct / total:.1%})\n"
        f"  wrong:   {wrong} ({wrong / total:.1%})\n"
        f"  missing: {missing} ({missing / total:.1%})"
    )
    print(
        f"\nWithout the transfer, at most {V6_DB_COVERAGE:.0%} of IPv6 "
        f"space had geolocation at all; sibling pairs with J >= "
        f"{MIN_TRANSFER_JACCARD} closed most of the gap using IPv4 data."
    )


if __name__ == "__main__":
    main()
