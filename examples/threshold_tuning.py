#!/usr/bin/env python3
"""Choose SP-Tuner thresholds for your use case (Sections 3.3-3.4).

The paper leaves the CIDR-size choice to the user: default BGP-announced
sizes, /24-/48 for most-specific routable prefixes, or /28-/96 for the
best similarity.  This example sweeps a threshold grid (the Figure 4
heatmap) and prints the trade-off so an operator can pick.

Run:  python examples/threshold_tuning.py
"""

from repro.analysis.pipeline import detect_at
from repro.core.sensitivity import cell_at, sweep_thresholds
from repro.core.sptuner import SpTunerMS, TunerConfig
from repro.dates import REFERENCE_DATE
from repro.synth import build_universe

V4_GRID = (16, 20, 24, 28)
V6_GRID = (32, 48, 64, 96)


def main() -> None:
    universe = build_universe("tiny")
    siblings, index = detect_at(universe, REFERENCE_DATE)
    print(
        f"{len(siblings)} sibling pairs at BGP-announced sizes; "
        f"mean Jaccard {siblings.mean_similarity:.3f}"
    )

    print("\nThreshold sweep (mean Jaccard / std per cell):")
    cells = sweep_thresholds(siblings, index, V4_GRID, V6_GRID)
    header = "v6\\v4 " + "".join(f"{f'/{v4}':>14}" for v4 in V4_GRID)
    print(header)
    for v6 in V6_GRID:
        row = f"/{v6:<5}"
        for v4 in V4_GRID:
            cell = cell_at(cells, v4, v6)
            row += f"{cell.mean:>8.3f}({cell.std:.2f})"
        print(row)

    print("\nRecommendations:")
    for label, config in [
        ("routable filtering (/24, /48)", TunerConfig(24, 48)),
        ("precision policy (/28, /96)", TunerConfig(28, 96)),
    ]:
        tuned = SpTunerMS(index, config).tune_all(siblings)
        print(
            f"  {label:<32} pairs={len(tuned):5d} "
            f"perfect={tuned.perfect_match_share:6.1%} "
            f"mean J={tuned.mean_similarity:.3f}"
        )
    print(
        "\nReading: deeper thresholds always help similarity (monotone in "
        "both axes) but produce prefixes that are not globally routable — "
        "use /24-/48 when the output must map onto BGP filters, /28-/96 "
        "for host-level policy like firewalls or geolocation transfer."
    )


if __name__ == "__main__":
    main()
