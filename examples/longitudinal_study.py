#!/usr/bin/env python3
"""A miniature longitudinal sibling-prefix study (Section 4.3).

Walks the 4-year window, tracks pair counts and Jaccard stability, and
classifies pairs into new / unchanged / changed — the Figure 9 and
Figure 10 story in one script.

The whole series runs on ONE columnar substrate instance
(detect_series), so the interned domain table is built once and reused
across all ten snapshots — the intended shape for longitudinal runs.

Run:  python examples/longitudinal_study.py
"""

from repro.analysis.pipeline import detect_series, paper_offsets
from repro.core.longitudinal import classify_changes, classify_series
from repro.core.substrate import ColumnarSubstrate
from repro.dates import REFERENCE_DATE
from repro.synth import build_universe


def main() -> None:
    universe = build_universe("tiny")
    offsets = paper_offsets(REFERENCE_DATE)

    print("Sibling pair counts over time (columnar substrate, shared "
          "intern pool):")
    engine = ColumnarSubstrate()
    series = detect_series(
        universe, [date for _, date in offsets], substrate=engine
    )
    sets = {}
    for (label, _), (date, siblings) in zip(offsets, series):
        sets[label] = siblings
        print(
            f"  {label:<9} {date}  pairs={len(siblings):5d}  "
            f"perfect={siblings.perfect_match_share:5.1%}"
        )
    print(
        f"  ({engine.interned_domain_count} distinct domains interned "
        f"across {len(series)} snapshots)"
    )
    growth = len(sets["Day 0"]) / max(1, len(sets["Year -4"]))
    print(f"\nGrowth over four years: {growth:.2f}x (paper: ~2.1x)")

    # The same series can roll snapshot deltas forward instead of
    # re-detecting each date — bit-identical output, cost scaling with
    # day-over-day churn (dates whose routing tables changed rebuild
    # automatically).
    incremental = detect_series(
        universe,
        [date for _, date in offsets],
        substrate=ColumnarSubstrate(),
        incremental=True,
    )
    matches = all(
        a.same_pairs(b)
        for (_, a), (_, b) in zip(series, incremental)
    )
    print(
        f"\nIncremental re-run (snapshot deltas, persistent Step-3 "
        f"counters): identical on all {len(incremental)} dates: {matches}"
    )

    print("\nNew pairs per consecutive step:")
    step_reports = classify_series([siblings for _, siblings in series])
    for (label, _), report in zip(offsets[1:], step_reports):
        print(f"  {label:<9} +{len(report.new)} new, {len(report.gone)} gone")

    report = classify_changes(sets["Year -4"], sets["Day 0"])
    total = report.total_current
    print("\nChange classes vs four years ago:")
    print(f"  new:       {len(report.new):5d} ({len(report.new) / total:.1%})")
    print(
        f"  unchanged: {len(report.unchanged):5d} "
        f"({len(report.unchanged) / total:.1%})"
    )
    print(
        f"  changed:   {len(report.changed):5d} "
        f"({len(report.changed) / total:.1%})"
    )
    print(f"  gone:      {len(report.gone):5d} (not part of the current set)")

    if report.changed:
        old_mean = sum(report.changed_old_similarities()) / len(report.changed)
        new_mean = sum(report.changed_current_similarities()) / len(report.changed)
        print(
            f"\nChanged pairs drifted from mean J={old_mean:.2f} (then) "
            f"to {new_mean:.2f} (now) — the paper observes the same "
            f"downward drift for changed pairs."
        )


if __name__ == "__main__":
    main()
