#!/usr/bin/env python3
"""Monitor RPKI consistency across sibling prefix pairs (Section 4.8).

The paper argues that sibling pairs with asymmetric ROV state deserve
operator attention: when only one family is covered by a ROA, traffic to
the other family is unprotected against origin hijacks; when states
conflict (valid + invalid), one family may be unreachable under strict
ROV filtering.

This example classifies every detected sibling pair against the RPKI
repository and prints the actionable buckets.

Run:  python examples/rpki_monitor.py
"""

from repro.analysis.pipeline import detect_at
from repro.analysis.rov import pair_rov_shares
from repro.dates import REFERENCE_DATE
from repro.rpki.builder import repository_from_universe
from repro.rpki.pair_status import PairRovStatus, classify_pair
from repro.synth import build_universe


def main() -> None:
    universe = build_universe("tiny")
    print("Building RPKI repository (49 monthly snapshots) ...")
    repository = repository_from_universe(universe)

    siblings, _ = detect_at(universe, REFERENCE_DATE)
    shares = pair_rov_shares(universe, siblings, repository, REFERENCE_DATE)

    print(f"\nROV status of {len(siblings)} sibling pairs on {REFERENCE_DATE}:")
    for status, share in shares.items():
        print(f"  {status.value:<22} {share:5.1f}%")
    at_least_one_valid = sum(
        share for status, share in shares.items() if status.has_valid
    )
    print(f"  at least one side valid: {at_least_one_valid:.1f}%")

    # Actionable findings: pairs where exactly one side needs a ROA.
    rib = universe.rib_at(REFERENCE_DATE)
    needs_roa = []
    conflicting = []
    for pair in siblings:
        route4 = rib.route_for_prefix(pair.v4_prefix)
        route6 = rib.route_for_prefix(pair.v6_prefix)
        if route4 is None or route6 is None:
            continue
        status4 = repository.validate(route4.prefix, route4.origin, REFERENCE_DATE)
        status6 = repository.validate(route6.prefix, route6.origin, REFERENCE_DATE)
        joint = classify_pair(status4, status6)
        if joint is PairRovStatus.VALID_NOTFOUND:
            needs_roa.append((pair, status4, status6))
        elif joint is PairRovStatus.VALID_INVALID:
            conflicting.append((pair, status4, status6))

    print(f"\nPairs where one family still needs a ROA: {len(needs_roa)}")
    for pair, status4, status6 in needs_roa[:6]:
        missing = pair.v6_prefix if status6.value == "notfound" else pair.v4_prefix
        print(f"  create ROA for {missing}  (sibling of a VALID prefix)")

    print(f"\nPairs with conflicting ROV state (valid + invalid): {len(conflicting)}")
    for pair, status4, status6 in conflicting[:6]:
        broken = pair.v4_prefix if status4.value == "invalid" else pair.v6_prefix
        print(f"  fix ROA for {broken}  (strict ROV would drop this family)")


if __name__ == "__main__":
    main()
