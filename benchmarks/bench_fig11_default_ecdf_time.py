"""Figure 11: default-case Jaccard ECDF at ten points in time.

Expected shape: perfect-match share stays in a stable band (paper:
45-55%) across all snapshots.
"""

from benchmarks.common import run_and_record


def test_fig11_default_ecdf_over_time(benchmark):
    result = run_and_record(benchmark, "fig11")
    for key, value in result.key_values.items():
        # Early snapshots run higher here (shared containers are not
        # yet filled), so the band is wider than the paper's 45-55%.
        assert 0.3 < value < 0.9, f"{key} out of the stable band"
