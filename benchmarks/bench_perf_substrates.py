"""Performance benches for the hot substrate paths.

Unlike the per-figure benches (single-shot experiment reproductions),
these use pytest-benchmark's statistical timing, guarding against
regressions in the patricia trie and the detection pipeline — the
structures that bound what scenario scales are feasible.
"""

import datetime

from repro.bgp.rib import Rib
from repro.core.detection import detect_siblings
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie

from benchmarks.common import get_universe


def _prefixes(count: int) -> list[Prefix]:
    return [
        Prefix.from_address(IPV4, (5 << 24) | (i << 8), 24) for i in range(count)
    ]


def test_perf_trie_insert(benchmark):
    prefixes = _prefixes(2000)

    def insert_all():
        trie = PatriciaTrie(IPV4)
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        return trie

    trie = benchmark(insert_all)
    assert len(trie) == 2000


def test_perf_trie_lpm(benchmark):
    trie = PatriciaTrie(IPV4)
    for index, prefix in enumerate(_prefixes(2000)):
        trie.insert(prefix, index)
    queries = [(5 << 24) | (i << 8) | 77 for i in range(2000)]

    def lookup_all():
        hits = 0
        for value in queries:
            if trie.lookup_address(value) is not None:
                hits += 1
        return hits

    assert benchmark(lookup_all) == 2000


def test_perf_rib_announce_withdraw(benchmark):
    prefixes = _prefixes(1000)

    def churn():
        rib = Rib()
        for prefix in prefixes:
            rib.announce(prefix, 64500)
        for prefix in prefixes[::2]:
            rib.withdraw(prefix, 64500)
        return rib

    rib = benchmark(churn)
    assert rib.prefix_count(IPV4) == 500


def test_perf_detection_pipeline(benchmark):
    universe = get_universe()
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    annotator = universe.annotator_at(REFERENCE_DATE)

    siblings = benchmark(detect_siblings, snapshot, annotator)
    assert len(siblings) > 0


def test_perf_sptuner(benchmark):
    from repro.core.detection import detect_with_index

    universe = get_universe()
    siblings, index = detect_with_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )

    def tune():
        return SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)

    tuned = benchmark(tune)
    assert tuned.perfect_match_share >= siblings.perfect_match_share


def test_perf_zone_build(benchmark):
    universe = get_universe()
    day = REFERENCE_DATE - datetime.timedelta(days=3)

    def build():
        universe._zone_cache._data.clear()
        return universe.zone_at(day)

    zone = benchmark(build)
    assert len(zone) > 0
