"""Performance benches for the hot substrate paths.

Unlike the per-figure benches (single-shot experiment reproductions),
these use pytest-benchmark's statistical timing, guarding against
regressions in the patricia trie and the detection pipeline — the
structures that bound what scenario scales are feasible.

The ``test_perf_pair_stats_*`` family is the reference-vs-columnar A/B
protocol documented in ``docs/PERFORMANCE.md``: both substrates run
Steps 3-4 over the same pre-built index at three universe scales.  The
columnar runs time ``select()`` on a prepared (interned) index — the
one-off interning cost is measured separately by
``test_perf_columnar_prepare`` because it amortizes across metrics,
best-match modes, SP-Tuner sweeps and longitudinal snapshots.
"""

import datetime

import pytest

from repro.bgp.rib import Rib
from repro.core.detection import detect_siblings
from repro.core.domainsets import build_index
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.core.substrate import ColumnarSubstrate, get_substrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie

from benchmarks.common import get_universe

#: The A/B scales; "medium" is the headline number.
AB_SCALES = ("tiny", "small", "medium")

_INDEX_CACHE = {}


def _index_for(scale):
    """Session-cached PrefixDomainIndex for one scenario scale."""
    index = _INDEX_CACHE.get(scale)
    if index is None:
        universe = get_universe(scale)
        index = build_index(
            universe.snapshot_at(REFERENCE_DATE),
            universe.annotator_at(REFERENCE_DATE),
        )
        _INDEX_CACHE[scale] = index
    return index


def _prefixes(count: int) -> list[Prefix]:
    return [
        Prefix.from_address(IPV4, (5 << 24) | (i << 8), 24) for i in range(count)
    ]


def test_perf_trie_insert(benchmark):
    prefixes = _prefixes(2000)

    def insert_all():
        trie = PatriciaTrie(IPV4)
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        return trie

    trie = benchmark(insert_all)
    assert len(trie) == 2000


def test_perf_trie_lpm(benchmark):
    trie = PatriciaTrie(IPV4)
    for index, prefix in enumerate(_prefixes(2000)):
        trie.insert(prefix, index)
    queries = [(5 << 24) | (i << 8) | 77 for i in range(2000)]

    def lookup_all():
        hits = 0
        for value in queries:
            if trie.lookup_address(value) is not None:
                hits += 1
        return hits

    assert benchmark(lookup_all) == 2000


def test_perf_rib_announce_withdraw(benchmark):
    prefixes = _prefixes(1000)

    def churn():
        rib = Rib()
        for prefix in prefixes:
            rib.announce(prefix, 64500)
        for prefix in prefixes[::2]:
            rib.withdraw(prefix, 64500)
        return rib

    rib = benchmark(churn)
    assert rib.prefix_count(IPV4) == 500


def test_perf_detection_pipeline(benchmark):
    universe = get_universe()
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    annotator = universe.annotator_at(REFERENCE_DATE)

    siblings = benchmark(detect_siblings, snapshot, annotator)
    assert len(siblings) > 0


def test_perf_sptuner(benchmark):
    from repro.core.detection import detect_with_index

    universe = get_universe()
    siblings, index = detect_with_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )

    def tune():
        return SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)

    tuned = benchmark(tune)
    assert tuned.perfect_match_share >= siblings.perfect_match_share


@pytest.mark.parametrize("scale", AB_SCALES)
def test_perf_pair_stats_reference(benchmark, scale):
    """A-side: Steps 3-4 on the dict-of-sets reference substrate."""
    index = _index_for(scale)
    substrate = get_substrate("reference")

    siblings = benchmark(substrate.select, index)
    assert len(siblings) > 0


@pytest.mark.parametrize("scale", AB_SCALES)
def test_perf_accumulate_reference(benchmark, scale):
    """Step 3 only: eager dict-of-sets pair-stats accumulation."""
    from repro.core.detection import compute_pair_stats

    index = _index_for(scale)
    stats = benchmark(compute_pair_stats, index)
    assert len(stats) > 0


@pytest.mark.parametrize("scale", AB_SCALES)
def test_perf_accumulate_columnar(benchmark, scale):
    """Step 3 only: packed-key posting-list accumulation."""
    from repro.core.detection import compute_pair_stats

    index = _index_for(scale)
    substrate = ColumnarSubstrate()
    state = substrate.prepare(index)

    counts = benchmark(substrate.pair_counts, state)
    assert len(counts) == len(compute_pair_stats(index))


@pytest.mark.parametrize("scale", AB_SCALES)
def test_perf_pair_stats_columnar(benchmark, scale):
    """B-side: Steps 3-4 on a prepared columnar index.

    Sanity-checked to produce the identical sibling set.  The ≥3x
    Step 3 acceptance bar is verified by comparing this family's
    timings by hand and recording them in docs/PERFORMANCE.md — this
    test asserts equality only, not the ratio.
    """
    index = _index_for(scale)
    substrate = ColumnarSubstrate()
    state = substrate.prepare(index)

    def setup():
        # Clear the lazily-memoized per-row gid sets so every round pays
        # the cold materialization a real one-shot select would.
        state._v4_gid_sets.clear()
        state._v6_gid_sets.clear()
        return (index,), {}

    siblings = benchmark.pedantic(
        substrate.select, setup=setup, rounds=20, warmup_rounds=1
    )
    reference = get_substrate("reference").select(index)
    assert {(p.v4_prefix, p.v6_prefix, p.similarity) for p in siblings} == {
        (p.v4_prefix, p.v6_prefix, p.similarity) for p in reference
    }


def test_perf_columnar_prepare(benchmark):
    """The one-off interning/posting-list build cost at medium scale.

    A fresh substrate per round, so every measurement pays the cold
    intern-pool path rather than warm dict hits.
    """
    index = _index_for("medium")

    def setup():
        return (ColumnarSubstrate(), index), {}

    def build(substrate, idx):
        return substrate.columnarize(idx)

    state = benchmark.pedantic(build, setup=setup, rounds=10)
    assert len(state.v4_prefixes) == index.v4_prefix_count


def test_perf_zone_build(benchmark):
    universe = get_universe()
    day = REFERENCE_DATE - datetime.timedelta(days=3)

    def build():
        universe._zone_cache._data.clear()
        return universe.zone_at(day)

    zone = benchmark(build)
    assert len(zone) > 0
