"""Figure 8 (deep-tuned) and Figures 33/34 (default, /24-/48): domains
per prefix.

Expected shape: single-domain pairs dominate (paper: 55% at /28-/96),
2-5 next (21%), diagonal cells dense.
"""

from benchmarks.common import run_and_record


def test_fig08_domain_bins_tuned(benchmark):
    result = run_and_record(benchmark, "fig08", case="deep")
    assert result.key_values["single_domain_pct"] > 25.0


def test_fig33_domain_bins_default(benchmark):
    result = run_and_record(benchmark, "fig08", tag="default_fig33", case="default")
    assert result.key_values["single_domain_pct"] > 15.0


def test_fig34_domain_bins_routable(benchmark):
    result = run_and_record(benchmark, "fig08", tag="routable_fig34", case="routable")
    assert result.key_values["single_domain_pct"] > 20.0
