"""Figure 6: DNS-based vs port-scan-based Jaccard heatmap.

Expected shape: ~70% of sibling pairs responsive; the densest cell is
the (0.9-1.0, 0.9-1.0) corner (paper: 36%), i.e. pairs similar in DNS
are also similar in open ports.
"""

from benchmarks.common import run_and_record


def test_fig06_portscan_overlap(benchmark):
    result = run_and_record(benchmark, "fig06")
    assert result.key_values["responsive_share"] > 0.4
    assert result.key_values["both_high_pct"] > 10.0
