"""Section 4 headline statistics: pair and prefix counts, org split.

Expected shape: more unique IPv4 than IPv6 prefixes (paper: 46.3k vs
39.5k), more than half of pairs same-organization.
"""

from benchmarks.common import run_and_record


def test_sec42_headline(benchmark):
    result = run_and_record(benchmark, "sec42")
    assert result.key_values["v4_more_than_v6"] == 1.0
    assert result.key_values["same_org_share"] > 0.5
