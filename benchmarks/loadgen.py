"""Client-side open-loop load generator for the serving tier.

Deterministic, dependency-free (stdlib only, so it runs anywhere a
client would): a seeded schedule of requests — arrival offsets drawn
from a Poisson process at a configured rate, request kinds drawn from
a configurable point/batch/snapshot mix, query targets drawn from a
Zipf-skewed popularity ranking — is generated up front and then
*replayed against the wall clock* by a pool of keep-alive HTTP
connections.  Open loop means a slow server does not slow the request
stream down: latency is measured from each request's **scheduled**
start, so queueing delay is charged to the server (no coordinated
omission).

The schedule layer is pure and deterministic (same seed → byte
identical stream; property-tested by ``tests/test_loadgen.py``); the
execution layer reports per-request records that
``benchmarks/bench_serving_fleet.py`` folds into p50/p99/p999 and
q/s-per-core, and that ``tests/test_serving_fleet.py`` uses to prove
generation consistency under swap storms.

Standalone use::

    python benchmarks/loadgen.py http://127.0.0.1:8080 \
        --requests 5000 --rate 2000 --mix point=0.8,batch=0.15,snapshot=0.05 \
        --targets targets.txt --seed 7
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import random
import sys
import threading
import time
from bisect import bisect_right
from http.client import HTTPConnection, HTTPException
from typing import Iterable, Sequence
from urllib.parse import quote, urlparse

#: Ratio below which a mix component is treated as absent.
_EPSILON = 1e-12


@dataclasses.dataclass(frozen=True)
class TrafficMix:
    """One traffic shape: request-kind ratios and per-kind knobs.

    Ratios are normalized at schedule time, so ``point=8, batch=2`` is
    the same mix as ``point=0.8, batch=0.2``.  ``zipf_s`` is the Zipf
    exponent of target popularity (0 = uniform; >= 1 = heavily skewed
    toward the first-ranked targets, the production shape).
    """

    name: str
    point: float = 1.0
    batch: float = 0.0
    snapshot: float = 0.0
    batch_size: int = 16
    zipf_s: float = 1.1

    def ratios(self) -> tuple[float, float, float]:
        total = self.point + self.batch + self.snapshot
        if total <= 0:
            raise ValueError(f"mix {self.name!r} has no positive ratio")
        return (self.point / total, self.batch / total, self.snapshot / total)


@dataclasses.dataclass(frozen=True)
class ScheduledRequest:
    """One request in the open-loop schedule.

    ``offset`` is seconds after the run's epoch at which the request
    is *due*; ``queries`` holds 1 query for a point, ``batch_size``
    for a batch, none for a snapshot probe.
    """

    offset: float
    kind: str  # "point" | "batch" | "snapshot"
    queries: tuple[str, ...]


def zipf_weights(count: int, s: float) -> list[float]:
    """Normalized Zipf(s) popularity weights for *count* ranks.

    ``weights[k] ∝ 1 / (k+1)**s``; sums to 1.0 (to float precision).
    """
    if count < 1:
        raise ValueError("need at least one target")
    raw = [1.0 / (rank + 1) ** s for rank in range(count)]
    total = sum(raw)
    return [weight / total for weight in raw]


def generate_schedule(
    targets: Sequence[str],
    count: int,
    rate: float,
    mix: TrafficMix,
    seed: int,
) -> list[ScheduledRequest]:
    """A deterministic open-loop schedule of *count* requests.

    Arrival offsets are a Poisson process at *rate* requests/second
    (exponential inter-arrivals); kinds follow the mix ratios; every
    query is drawn from *targets* with Zipf(``mix.zipf_s``) popularity
    (targets earlier in the sequence are more popular).  Everything is
    driven by one ``random.Random(seed)``, so the same arguments
    produce a byte-identical stream (see :func:`encode_schedule`).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if rate <= 0:
        raise ValueError("rate must be > 0")
    point_ratio, batch_ratio, _ = mix.ratios()
    cut_point = point_ratio
    cut_batch = point_ratio + batch_ratio
    rng = random.Random(seed)
    cumulative: list[float] = []
    running = 0.0
    for weight in zipf_weights(len(targets), mix.zipf_s):
        running += weight
        cumulative.append(running)

    def pick_target() -> str:
        position = bisect_right(cumulative, rng.random())
        return targets[min(position, len(targets) - 1)]

    schedule: list[ScheduledRequest] = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        roll = rng.random()
        if roll < cut_point:
            kind, queries = "point", (pick_target(),)
        elif roll < cut_batch:
            kind = "batch"
            queries = tuple(pick_target() for _ in range(mix.batch_size))
        else:
            kind, queries = "snapshot", ()
        schedule.append(ScheduledRequest(clock, kind, queries))
    return schedule


def encode_schedule(schedule: Iterable[ScheduledRequest]) -> bytes:
    """Canonical byte serialization of a schedule.

    One JSON array per line, compact separators, full float ``repr``
    of the offset — two schedules are equal iff their encodings are
    byte-identical, which is what the determinism property test
    asserts.
    """
    lines = [
        json.dumps(
            [request.offset, request.kind, list(request.queries)],
            separators=(",", ":"),
        )
        for request in schedule
    ]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


# -- latency statistics -------------------------------------------------------


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile of *samples*, linear interpolation.

    Matches ``numpy.percentile(..., method="linear")`` (and
    ``statistics.quantiles(..., method="inclusive")`` at interior cut
    points): position ``(n-1) * q/100`` into the sorted samples,
    interpolating between the straddling order statistics.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    position = (len(ordered) - 1) * (q / 100.0)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def summarize(result: "LoadResult") -> dict:
    """p50/p99/p999 open-loop latency + throughput for one run.

    ``status_counts`` breaks every request down by HTTP status code
    (``"transport"`` for requests that never got a response), so an
    erroring leg is visible next to its percentiles instead of hiding
    behind them; ``retried`` counts requests that needed the runner's
    transparent reconnect.
    """
    latencies = [r.latency for r in result.records if r.ok]
    okay = len(latencies)
    status_counts: dict[str, int] = {}
    retried = 0
    for record in result.records:
        key = "transport" if record.status is None else str(record.status)
        status_counts[key] = status_counts.get(key, 0) + 1
        retried += record.retried
    summary = {
        "requests": len(result.records),
        "ok": okay,
        "errors": len(result.records) - okay,
        "status_counts": dict(sorted(status_counts.items())),
        "retried": retried,
        "elapsed": result.elapsed,
        "qps": okay / result.elapsed if result.elapsed > 0 else 0.0,
    }
    if latencies:
        summary["p50"] = percentile(latencies, 50)
        summary["p99"] = percentile(latencies, 99)
        summary["p999"] = percentile(latencies, 99.9)
    return summary


# -- execution ----------------------------------------------------------------


@dataclasses.dataclass
class RequestRecord:
    """The outcome of one scheduled request.

    ``latency`` is open-loop (completion minus *scheduled* start);
    ``done_at`` is the completion time on ``time.monotonic()``'s
    system-wide clock, so supervisor-side commit timestamps are
    directly comparable.  ``snapshots`` holds the distinct snapshot
    dates carried by the answer rows (populated when the runner parses
    bodies): one value for a point hit, and — if the service's
    no-mixed-generation guarantee holds — never more than one for a
    batch.  ``status`` is the HTTP status code (``None`` when no
    response ever arrived — a transport failure); a non-200 status is
    never ``ok``, so an erroring leg cannot masquerade as healthy
    latency samples.  ``retried`` marks requests that went through the
    runner's transparent reconnect (their server-side effect may be
    double-counted).
    """

    offset: float
    kind: str
    ok: bool
    latency: float
    done_at: float
    snapshots: tuple[str, ...] = ()
    status: "int | None" = None
    retried: bool = False


@dataclasses.dataclass
class LoadResult:
    """All request records of one run plus the measured wall time."""

    records: list[RequestRecord]
    elapsed: float

    def errors(self) -> list[RequestRecord]:
        return [record for record in self.records if not record.ok]


def _answer_snapshots(kind: str, body: bytes) -> tuple[str, ...]:
    """The distinct snapshot dates carried by one response body."""
    payload = json.loads(body)
    if kind == "point":
        rows = [payload]
    elif kind == "batch":
        rows = payload.get("results", [])
    else:  # snapshot probe: generation metadata, not an answer
        index = payload.get("index") or {}
        snapshot = index.get("snapshot")
        return (snapshot,) if snapshot else ()
    return tuple(
        sorted({row["snapshot"] for row in rows if "snapshot" in row})
    )


class _Runner(threading.Thread):
    """One client connection replaying its slice of the schedule."""

    def __init__(
        self,
        host: str,
        port: int,
        schedule: Sequence[ScheduledRequest],
        epoch: float,
        parse: bool,
        stop: "threading.Event | None",
    ):
        super().__init__(name=f"loadgen-{id(self):x}")
        self.host, self.port = host, port
        self.schedule = schedule
        self.epoch = epoch
        self.parse = parse
        self.stop_event = stop
        self.records: list[RequestRecord] = []
        self._connection: HTTPConnection | None = None

    def _connect(self) -> HTTPConnection:
        if self._connection is None:
            self._connection = HTTPConnection(
                self.host, self.port, timeout=10
            )
        return self._connection

    def _reset(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _issue(self, request: ScheduledRequest) -> "tuple[int, bytes]":
        connection = self._connect()
        if request.kind == "point":
            connection.request(
                "GET", "/v1/lookup?ip=" + quote(request.queries[0])
            )
        elif request.kind == "batch":
            connection.request(
                "POST",
                "/v1/batch",
                body=json.dumps({"queries": list(request.queries)}),
                headers={"Content-Type": "application/json"},
            )
        else:
            connection.request("GET", "/v1/snapshot")
        response = connection.getresponse()
        return response.status, response.read()

    def run(self) -> None:
        for request in self.schedule:
            if self.stop_event is not None and self.stop_event.is_set():
                break
            due = self.epoch + request.offset
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            status = None
            body = None
            retried = False
            # One transparent reconnect: a worker restart legitimately
            # drops keep-alive connections; only a failure on a fresh
            # connection counts as a failed request.
            for attempt in (0, 1):
                try:
                    status, body = self._issue(request)
                    break
                except (OSError, HTTPException):
                    self._reset()
                    retried = True
                    if attempt:
                        break
            done = time.monotonic()
            snapshots: tuple[str, ...] = ()
            # Only a 200 whose body arrived is a success; an error page
            # with a fast turnaround must never feed the percentiles.
            ok = status == 200 and body is not None
            if ok and self.parse:
                try:
                    snapshots = _answer_snapshots(request.kind, body)
                except (ValueError, KeyError, TypeError):
                    ok = False
            self.records.append(
                RequestRecord(
                    request.offset, request.kind, ok, done - due, done,
                    snapshots, status, retried,
                )
            )
        self._reset()


def run_load(
    url: str,
    schedule: Sequence[ScheduledRequest],
    connections: int = 4,
    parse: bool = False,
    stop: "threading.Event | None" = None,
) -> LoadResult:
    """Replay *schedule* against *url* over keep-alive connections.

    The schedule is dealt round-robin across *connections* client
    threads (each holding one persistent HTTP connection), preserving
    per-thread offset order.  With ``parse=True`` every response body
    is decoded and its snapshot dates recorded — the stress tests'
    generation-consistency probe; leave it off when measuring peak
    client throughput.  *stop* aborts the remaining schedule early.
    """
    parsed = urlparse(url)
    if parsed.hostname is None or parsed.port is None:
        raise ValueError(f"need an explicit host:port URL, got {url!r}")
    epoch = time.monotonic()
    runners = [
        _Runner(
            parsed.hostname,
            parsed.port,
            schedule[slot::connections],
            epoch,
            parse,
            stop,
        )
        for slot in range(max(1, connections))
    ]
    for runner in runners:
        runner.start()
    records: list[RequestRecord] = []
    for runner in runners:
        runner.join()
        records.extend(runner.records)
    elapsed = time.monotonic() - epoch
    records.sort(key=lambda record: record.offset)
    return LoadResult(records, elapsed)


# -- CLI ----------------------------------------------------------------------


def parse_mix(text: str, name: str = "cli") -> TrafficMix:
    """``point=0.8,batch=0.15,snapshot=0.05`` → :class:`TrafficMix`."""
    ratios = {"point": 0.0, "batch": 0.0, "snapshot": 0.0}
    for part in text.split(","):
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in ratios or not value:
            raise ValueError(
                f"bad mix component {part!r} (want kind=ratio with kind "
                f"in point/batch/snapshot)"
            )
        ratios[key] = float(value)
    if sum(ratios.values()) <= _EPSILON:
        raise ValueError(f"mix {text!r} has no positive ratio")
    return TrafficMix(name, **ratios)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loadgen",
        description="Open-loop load generator for the sibling serving tier",
    )
    parser.add_argument("url", help="service base URL, e.g. http://host:port")
    parser.add_argument(
        "--requests", type=int, default=5000, help="schedule length"
    )
    parser.add_argument(
        "--rate", type=float, default=2000.0, help="offered load, req/s"
    )
    parser.add_argument(
        "--mix",
        default="point=1.0",
        help="traffic mix, e.g. point=0.8,batch=0.15,snapshot=0.05",
    )
    parser.add_argument(
        "--batch-size", type=int, default=16, help="queries per batch request"
    )
    parser.add_argument(
        "--zipf", type=float, default=1.1, help="target popularity skew s"
    )
    parser.add_argument(
        "--connections", type=int, default=4, help="client connections"
    )
    parser.add_argument("--seed", type=int, default=7, help="schedule seed")
    parser.add_argument(
        "--targets",
        help="file of query targets, one per line (default: RFC 5737/3849 "
        "documentation addresses)",
    )
    return parser


#: Fallback query targets: documentation addresses, both families.
DEFAULT_TARGETS = (
    "192.0.2.7",
    "192.0.2.200",
    "198.51.100.1",
    "203.0.113.5",
    "2001:db8::1",
    "2001:db8:dead::beef",
)


def main(argv: "Sequence[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        mix = dataclasses.replace(
            parse_mix(args.mix),
            batch_size=args.batch_size,
            zipf_s=args.zipf,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.targets:
        targets = [
            line.strip()
            for line in open(args.targets)
            if line.strip()
        ]
        if not targets:
            print(f"error: no targets in {args.targets!r}", file=sys.stderr)
            return 2
    else:
        targets = list(DEFAULT_TARGETS)
    schedule = generate_schedule(
        targets, args.requests, args.rate, mix, args.seed
    )
    result = run_load(args.url, schedule, connections=args.connections)
    summary = summarize(result)
    codes = " ".join(
        f"{code}:{count}" for code, count in summary["status_counts"].items()
    )
    print(
        f"{summary['ok']}/{summary['requests']} ok, "
        f"{summary['errors']} errors, {summary['elapsed']:.2f}s, "
        f"{summary['qps']:,.0f} q/s, codes[{codes}]"
        + (f", {summary['retried']} retried" if summary["retried"] else "")
    )
    if "p50" in summary:
        print(
            f"open-loop latency p50={summary['p50'] * 1e3:.2f}ms "
            f"p99={summary['p99'] * 1e3:.2f}ms "
            f"p999={summary['p999'] * 1e3:.2f}ms"
        )
    return 0 if summary["errors"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
