"""Shared bench plumbing: scenario cache, result recording."""

from __future__ import annotations

import os
import pathlib

from repro.reporting.experiments import ExperimentResult, run_experiment
from repro.synth import Universe, build_universe

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_UNIVERSES: dict[str, Universe] = {}


def bench_scale() -> str:
    """Scenario preset for benches (``REPRO_SCALE`` env, default small)."""
    return os.environ.get("REPRO_SCALE", "small")


def get_universe(scale: str | None = None) -> Universe:
    """Session-cached universe for the requested scale."""
    name = scale if scale is not None else bench_scale()
    universe = _UNIVERSES.get(name)
    if universe is None:
        universe = build_universe(name)
        _UNIVERSES[name] = universe
    return universe


def record(result: ExperimentResult, tag: str = "") -> ExperimentResult:
    """Print the rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join(
        [result.title, "=" * len(result.title), "", result.text, ""]
        + result.summary_lines()
    )
    name = result.experiment_id + (f"_{tag}" if tag else "")
    (RESULTS_DIR / f"{name}.txt").write_text(body + "\n")
    print()
    print(body)
    return result


def run_and_record(
    benchmark, experiment_id: str, tag: str = "", **kwargs
) -> ExperimentResult:
    """Benchmark one experiment runner (single round) and record it."""
    universe = get_universe()
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, universe),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    return record(result, tag)
