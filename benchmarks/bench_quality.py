"""Ground-truth detection quality (synthetic-only capability).

Expected shape: near-total recall of DNS-visible deployments and no
unexplained (spurious) sibling pairs.
"""

from benchmarks.common import run_and_record


def test_detection_quality(benchmark):
    result = run_and_record(benchmark, "quality")
    assert result.key_values["recall"] > 0.8
    assert result.key_values["precision_proxy"] > 0.95
