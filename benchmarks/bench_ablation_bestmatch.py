"""Ablation: Step 4 best-match selection rule.

Expected shape: BOTH ⊆ V4/V6 ⊆ EITHER in pair counts; the default
(EITHER) maximizes coverage while keeping per-prefix maxima only.
"""

from benchmarks.common import run_and_record


def test_ablation_bestmatch(benchmark):
    result = run_and_record(benchmark, "ablation_bestmatch")
    assert result.key_values["pairs_both"] <= result.key_values["pairs_v4"]
    assert result.key_values["pairs_v4"] <= result.key_values["pairs_either"]
