"""Full vs incremental detect-series over a churning snapshot sequence.

The incremental pipeline's promise: a 10-date longitudinal run whose
consecutive snapshots differ in ≤ 10 % of domains should cost roughly
one full detection plus nine delta-sized updates, not ten full
detections.  This bench drives both modes of
:func:`repro.analysis.pipeline.detect_series` over synthetic series at
three scales — per date ~8 % of domains churn (half renumber inside
their prefixes, a quarter move prefixes, the rest appear/disappear) —
and records the wall-time ratio.  The acceptance bar from the PR 4
issue, incremental ≥ 3× full at the medium scale, is asserted on every
host: the speedup comes from skipping re-annotation and Step-3
re-accumulation of unchanged domains, not from parallelism.

Every timed run also cross-checks bit-identity per date (the cheap
mapping comparison from the tier-1 suites), so a timing run doubles as
an equivalence check.  Results land in ``results/incremental_series.txt``.
"""

import datetime
import random
import time

import pytest

from repro.analysis.pipeline import detect_series
from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.substrate import ColumnarSubstrate
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

from benchmarks.common import RESULTS_DIR

#: (domains, memberships per family) per scale; pair rows per date are
#: domains * fan^2.
SCALES = {
    "small": (1_500, 3),    #  13.5k pair rows/date
    "medium": (4_000, 6),   # 144k pair rows/date
    "large": (8_000, 8),    # 512k pair rows/date
}

N_DATES = 10
CHURN = 0.08  # ≤ 10 % of domains touched per date
POOL_SIZE = 64
REPEATS = 2

_LINES: list[str] = []

V4_POOL = [
    Prefix.from_address(IPV4, (20 << 24) | (i << 8), 24)
    for i in range(POOL_SIZE)
]
V6_POOL = [
    Prefix.from_address(IPV6, (0x2400_00DB << 96) | (i << 80), 48)
    for i in range(POOL_SIZE)
]

_SERIES_CACHE: dict[str, tuple] = {}


class _SeriesShim:
    """Pipeline-facing stand-in for a Universe: prebuilt snapshots, one
    fixed annotator (stable routing → delta application is never gated
    off)."""

    def __init__(self, snapshots):
        self._snapshots = {s.date: s for s in snapshots}
        rib = Rib()
        for position, prefix in enumerate(V4_POOL + V6_POOL):
            rib.announce(prefix, 65000 + position)
        self._annotator = PrefixAnnotator(rib, missing_fraction=0.0)

    def snapshot_at(self, date):
        return self._snapshots[date]

    def annotator_at(self, date):
        return self._annotator


def _observation(rng, label, fan) -> DomainObservation:
    v4_pools = rng.sample(range(POOL_SIZE), fan)
    v6_pools = rng.sample(range(POOL_SIZE), fan)
    return DomainObservation(
        label,
        tuple(
            V4_POOL[pool].first_address + rng.randint(1, 250)
            for pool in v4_pools
        ),
        tuple(
            V6_POOL[pool].first_address + rng.randint(1, 250)
            for pool in v6_pools
        ),
    )


def _renumbered(rng, observation: DomainObservation) -> DomainObservation:
    """New addresses inside the same prefixes (membership-preserving)."""
    return DomainObservation(
        observation.domain,
        tuple((a & ~0xFF) | rng.randint(1, 250) for a in observation.v4_addresses),
        tuple(
            (a >> 80 << 80) | rng.randint(1, 250)
            for a in observation.v6_addresses
        ),
    )


def _build_series(scale: str):
    cached = _SERIES_CACHE.get(scale)
    if cached is not None:
        return cached
    n_domains, fan = SCALES[scale]
    rng = random.Random(20260728)
    table = {
        f"d{i}.bench": _observation(rng, f"d{i}.bench", fan)
        for i in range(n_domains)
    }
    next_label = n_domains
    dates = [
        datetime.date(2024, 9, 1) + datetime.timedelta(days=i)
        for i in range(N_DATES)
    ]
    snapshots = [DnsSnapshot(dates[0], table.values())]
    for date in dates[1:]:
        labels = rng.sample(sorted(table), int(n_domains * CHURN))
        for position, label in enumerate(labels):
            if position % 2 == 0:
                table[label] = _renumbered(rng, table[label])
            elif position % 4 == 1:
                table[label] = _observation(rng, label, fan)
            else:
                del table[label]
                fresh = f"d{next_label}.bench"
                next_label += 1
                table[fresh] = _observation(rng, fresh, fan)
        snapshots.append(DnsSnapshot(date, table.values()))
    shim = _SeriesShim(snapshots)
    _SERIES_CACHE[scale] = (shim, dates)
    return shim, dates


def _as_mappings(series):
    return [
        {
            (pair.v4_prefix, pair.v6_prefix): (
                pair.similarity,
                pair.shared_domains,
                pair.v4_domain_count,
                pair.v6_domain_count,
            )
            for pair in siblings
        }
        for _, siblings in series
    ]


def _best_of(fn, repeats: int = REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "full vs incremental detect-series",
        "=" * 33,
        "",
        f"{N_DATES} dates, {CHURN:.0%} domain churn per date, columnar engine",
        "(acceptance bar: incremental >= 3x full at medium scale)",
        "",
        f"{'scale':<8} {'domains':>8} {'full':>10} {'incremental':>12} "
        f"{'speedup':>8}",
    ]
    (RESULTS_DIR / "incremental_series.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


@pytest.mark.parametrize("scale", list(SCALES))
def test_incremental_series_speedup(scale):
    """Wall time of the 10-date series, both modes, equivalence checked."""
    shim, dates = _build_series(scale)
    n_domains, _ = SCALES[scale]

    full_elapsed, full = _best_of(
        lambda: detect_series(shim, dates, substrate=ColumnarSubstrate())
    )
    incremental_elapsed, incremental = _best_of(
        lambda: detect_series(
            shim, dates, substrate=ColumnarSubstrate(), incremental=True
        )
    )
    assert _as_mappings(full) == _as_mappings(incremental)  # bit-identical

    speedup = (
        full_elapsed / incremental_elapsed if incremental_elapsed else 0.0
    )
    _LINES.append(
        f"{scale:<8} {n_domains:>8,} {full_elapsed * 1e3:>8.0f}ms "
        f"{incremental_elapsed * 1e3:>10.0f}ms {speedup:>7.2f}x"
    )
    _flush_results()

    if scale == "medium":
        assert speedup >= 3.0, (
            f"incremental only {speedup:.2f}x over full at {scale} scale "
            f"({N_DATES} dates, {CHURN:.0%} churn; acceptance bar is 3x)"
        )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
