"""Figures 4/19: SP-Tuner threshold sensitivity heatmap.

Expected shape: mean Jaccard rises monotonically toward more specific
thresholds on both axes (paper: 0.647 at /16-/32 up to 0.878 at /28-/96)
while the standard deviation falls.
"""

from benchmarks.common import run_and_record

V4 = (16, 18, 20, 22, 24, 26, 28)
V6 = (32, 40, 48, 56, 64, 80, 96)


def test_fig04_sptuner_heatmap(benchmark):
    result = run_and_record(
        benchmark, "fig04", v4_thresholds=V4, v6_thresholds=V6
    )
    assert result.key_values["mean_at_tightest"] > result.key_values[
        "mean_at_loosest"
    ]
    assert result.key_values["std_at_tightest"] < result.key_values[
        "std_at_loosest"
    ]
