"""Sharded vs columnar Step-3 accumulation at three scales.

The sharded engine only pays off once the packed-key accumulation
dwarfs worker spin-up, so this bench drives both engines over
*synthetic dense membership indexes* (many multi-prefix domains — the
hypergiant/shared-hosting shape) at three pair-row scales, the largest
well inside the parallel regime.  The stock universe scenarios (tiny …
medium) all sit *below* the fallback threshold — that is the point of
the threshold — and are represented here by the fallback leg.

Timing is ``time.perf_counter`` best-of-N (each test reports a ratio
between two legs); the module still runs once, untimed, under CI's
``--benchmark-disable`` smoke job.  Every timed leg asserts the two
engines produced identical counts, so a timing run is also an
equivalence check.

Results land in ``results/parallel_detect.txt`` together with the host
core count.  The PR 3 acceptance bar — sharded ≥ 2× columnar at the
largest scale with 4+ workers — is asserted **only when the host
actually has 4+ cores**; on smaller hosts the measured numbers are
still recorded, clearly labelled.
"""

import os
import random
import time

import pytest

from repro.core.domainsets import PrefixDomainIndex
from repro.core.parallel import ShardedSubstrate, estimate_pair_rows
from repro.core.substrate import ColumnarSubstrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

from benchmarks.common import RESULTS_DIR

#: (domains, v4 memberships, v6 memberships) per scale; pair rows are
#: domains * v4 * v6.
SCALES = {
    "small": (2_000, 4, 4),       #   32k pair rows
    "medium": (8_000, 8, 8),      #  512k pair rows
    "large": (6_000, 20, 20),     #  2.4M pair rows
}

WORKERS = max(4, os.cpu_count() or 1)
REPEATS = 3

_LINES: list[str] = []
_INDEX_CACHE: dict[str, PrefixDomainIndex] = {}


def _dense_index(scale: str) -> PrefixDomainIndex:
    """A deterministic dense membership index for one scale."""
    index = _INDEX_CACHE.get(scale)
    if index is not None:
        return index
    n_domains, fan_v4, fan_v6 = SCALES[scale]
    rng = random.Random(20260728)
    v4_pool = [
        Prefix.from_address(IPV4, (10 << 24) | (i << 8), 24)
        for i in range(256)
    ]
    v6_pool = [
        Prefix.from_address(IPV6, (0x2001_0DB8 << 96) | (i << 80), 48)
        for i in range(256)
    ]
    index = PrefixDomainIndex(date=REFERENCE_DATE)
    for position in range(n_domains):
        label = f"d{position}.bench"
        v4_prefixes = set(rng.sample(v4_pool, fan_v4))
        v6_prefixes = set(rng.sample(v6_pool, fan_v6))
        index.domain_v4_prefixes[label] = v4_prefixes
        index.domain_v6_prefixes[label] = v6_prefixes
        for prefix in v4_prefixes:
            index.v4_domains.setdefault(prefix, set()).add(label)
        for prefix in v6_prefixes:
            index.v6_domains.setdefault(prefix, set()).add(label)
    _INDEX_CACHE[scale] = index
    return index


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "sharded vs columnar Step-3 accumulation",
        "=" * 39,
        "",
        f"host cores: {os.cpu_count()}  workers: {WORKERS}  "
        f"(>=2x bar asserted only on 4+ core hosts)",
        "",
        f"{'scale':<8} {'pair rows':>10} {'columnar':>10} {'sharded':>10} "
        f"{'speedup':>8}",
    ]
    (RESULTS_DIR / "parallel_detect.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


@pytest.mark.parametrize("scale", list(SCALES))
def test_parallel_accumulation_speedup(scale):
    """Step 3 wall time, columnar vs sharded, equivalence asserted."""
    index = _dense_index(scale)
    columnar = ColumnarSubstrate()
    state = columnar.prepare(index)
    pair_rows = estimate_pair_rows(state)

    columnar_counts = {}
    sharded_counts = {}

    def columnar_leg():
        columnar_counts.clear()
        columnar_counts.update(ColumnarSubstrate.pair_counts(state))

    sharded = ShardedSubstrate(workers=WORKERS, min_pair_rows=0)
    sharded_state = sharded.prepare(index)

    def sharded_leg():
        sharded_counts.clear()
        sharded_counts.update(sharded.pair_counts(sharded_state))

    columnar_elapsed = _best_of(columnar_leg)
    sharded_elapsed = _best_of(sharded_leg)
    assert sharded.last_run["mode"] == "sharded"
    assert columnar_counts == sharded_counts  # bit-identical merge

    speedup = columnar_elapsed / sharded_elapsed if sharded_elapsed else 0.0
    _LINES.append(
        f"{scale:<8} {pair_rows:>10,} {columnar_elapsed * 1e3:>8.1f}ms "
        f"{sharded_elapsed * 1e3:>8.1f}ms {speedup:>7.2f}x"
    )
    _flush_results()

    if scale == "large" and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"sharded only {speedup:.2f}x over columnar at {scale} scale "
            f"with {WORKERS} workers (acceptance bar is 2x on 4+ cores)"
        )


def test_fallback_leg_recorded():
    """Below the threshold the engine runs columnar; record that too."""
    index = _dense_index("small")
    engine = ShardedSubstrate(workers=WORKERS)  # stock threshold
    engine.select(index)
    mode = engine.last_run["mode"]
    assert mode == "fallback"
    _LINES.append("")
    _LINES.append(
        f"fallback check: small scale at stock threshold ran "
        f"'{mode}' (pair rows {engine.last_run['pair_rows']:,} < "
        f"{engine.min_pair_rows:,})"
    )
    _flush_results()
