"""Step-3 accumulation: kernel (python vs numpy) x engine (columnar vs
sharded) at three scales.

The bench drives the accumulation over *synthetic dense membership
indexes* (many multi-prefix domains — the hypergiant/shared-hosting
shape) at three pair-row scales and times four legs:

* **kernel legs** — the columnar accumulate on the python and numpy
  kernels, same prepared state, timed directly on
  ``ColumnarSubstrate.pair_counts`` (no dict conversion inside the
  timed region).  The PR 9 acceptance bar — numpy >= 5x python,
  single core, at the largest (2.4M pair-row) scale — is asserted
  here whenever numpy is importable.
* **engine legs** — sharded vs columnar within each kernel (the PR 3
  bar — sharded >= 2x columnar at the largest scale with 4+ workers —
  is asserted only on 4+ core hosts, per kernel).
* **compound leg** — sharded workers each running the vectorized
  kernel against the original single-core python columnar baseline:
  the two speedups multiply.
* **crossover sweep** — per-scale sharded/columnar ratios on the best
  kernel, recorded to justify ``DEFAULT_MIN_PAIR_ROWS``: vectorizing
  the columnar path moved the break-even point up by roughly the
  kernel speedup, which is why the threshold rose from 200k to 2M
  emitted rows.

Timing is ``time.perf_counter`` best-of-N (each test reports a ratio
between two legs); the module still runs once under CI's
``--benchmark-disable`` smoke job.  Every timed leg asserts the legs
produced identical counts, so a timing run is also an equivalence
check.

Results land in ``results/parallel_detect.txt`` together with the host
core count.
"""

import os
import random
import time

import pytest

from repro.core.domainsets import PrefixDomainIndex
from repro.core.kernels import available_kernel_names, numpy_available, use_kernel
from repro.core.parallel import (
    DEFAULT_MIN_PAIR_ROWS,
    ShardedSubstrate,
    estimate_pair_rows,
)
from repro.core.substrate import ColumnarSubstrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

from benchmarks.common import RESULTS_DIR

#: (domains, v4 memberships, v6 memberships) per scale; pair rows are
#: domains * v4 * v6.
SCALES = {
    "small": (2_000, 4, 4),       #   32k pair rows
    "medium": (8_000, 8, 8),      #  512k pair rows
    "large": (6_000, 20, 20),     #  2.4M pair rows
}

KERNEL_NAMES = available_kernel_names()
WORKERS = max(4, os.cpu_count() or 1)
REPEATS = 3

_LINES: list[str] = []
_INDEX_CACHE: dict[str, PrefixDomainIndex] = {}


def _dense_index(scale: str) -> PrefixDomainIndex:
    """A deterministic dense membership index for one scale."""
    index = _INDEX_CACHE.get(scale)
    if index is not None:
        return index
    n_domains, fan_v4, fan_v6 = SCALES[scale]
    rng = random.Random(20260728)
    v4_pool = [
        Prefix.from_address(IPV4, (10 << 24) | (i << 8), 24)
        for i in range(256)
    ]
    v6_pool = [
        Prefix.from_address(IPV6, (0x2001_0DB8 << 96) | (i << 80), 48)
        for i in range(256)
    ]
    index = PrefixDomainIndex(date=REFERENCE_DATE)
    for position in range(n_domains):
        label = f"d{position}.bench"
        v4_prefixes = set(rng.sample(v4_pool, fan_v4))
        v6_prefixes = set(rng.sample(v6_pool, fan_v6))
        index.domain_v4_prefixes[label] = v4_prefixes
        index.domain_v6_prefixes[label] = v6_prefixes
        for prefix in v4_prefixes:
            index.v4_domains.setdefault(prefix, set()).add(label)
        for prefix in v6_prefixes:
            index.v6_domains.setdefault(prefix, set()).add(label)
    _INDEX_CACHE[scale] = index
    return index


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "Step-3 accumulation: kernel x engine",
        "=" * 36,
        "",
        f"host cores: {os.cpu_count()}  workers: {WORKERS}  "
        f"kernels: {', '.join(KERNEL_NAMES)}",
        "(numpy>=5x bar asserted single-core at large scale; sharded>=2x "
        "bar asserted only on 4+ core hosts)",
    ]
    (RESULTS_DIR / "parallel_detect.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


def _section(title: str, columns: str) -> None:
    _LINES.extend(["", title, "-" * len(title), columns])


@pytest.mark.parametrize("scale", list(SCALES))
def test_kernel_step3_speedup(scale):
    """Columnar Step-3 accumulate, python vs numpy kernel, same state."""
    if scale == "small":
        _section(
            "kernel legs (columnar accumulate, single core)",
            f"{'scale':<8} {'pair rows':>10} {'python':>10} {'numpy':>10} "
            f"{'speedup':>8}",
        )
    index = _dense_index(scale)
    state = ColumnarSubstrate().prepare(index)
    pair_rows = estimate_pair_rows(state)

    results = {}
    elapsed = {}
    for kernel in KERNEL_NAMES:
        with use_kernel(kernel):
            elapsed[kernel] = _best_of(
                lambda: results.__setitem__(
                    kernel, ColumnarSubstrate.pair_counts(state)
                )
            )
    if not numpy_available():
        _LINES.append(
            f"{scale:<8} {pair_rows:>10,} "
            f"{elapsed['python'] * 1e3:>8.1f}ms {'n/a':>10} {'n/a':>8}"
        )
        _flush_results()
        pytest.skip("numpy kernel not importable on this host")
    # Bit-identical mapping across kernels (outside the timed region).
    assert dict(results["python"].items()) == dict(results["numpy"].items())
    speedup = elapsed["python"] / elapsed["numpy"] if elapsed["numpy"] else 0.0
    _LINES.append(
        f"{scale:<8} {pair_rows:>10,} {elapsed['python'] * 1e3:>8.1f}ms "
        f"{elapsed['numpy'] * 1e3:>8.1f}ms {speedup:>7.2f}x"
    )
    _flush_results()

    if scale == "large":
        assert speedup >= 5.0, (
            f"numpy kernel only {speedup:.2f}x over python at {scale} scale "
            f"({pair_rows:,} pair rows; acceptance bar is 5x single-core)"
        )


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@pytest.mark.parametrize("scale", list(SCALES))
def test_parallel_accumulation_speedup(scale, kernel):
    """Step 3 wall time, columnar vs sharded within one kernel."""
    if scale == "small" and kernel == KERNEL_NAMES[0]:
        _section(
            "engine legs (sharded vs columnar, per kernel)",
            f"{'scale':<8} {'pair rows':>10} {'kernel':>7} {'columnar':>10} "
            f"{'sharded':>10} {'speedup':>8}",
        )
    index = _dense_index(scale)
    with use_kernel(kernel):
        columnar = ColumnarSubstrate()
        state = columnar.prepare(index)
        pair_rows = estimate_pair_rows(state)

        columnar_counts = {}
        sharded_counts = {}

        def columnar_leg():
            columnar_counts.clear()
            columnar_counts.update(ColumnarSubstrate.pair_counts(state).items())

        sharded = ShardedSubstrate(workers=WORKERS, min_pair_rows=0)
        sharded_state = sharded.prepare(index)

        def sharded_leg():
            sharded_counts.clear()
            sharded_counts.update(sharded.pair_counts(sharded_state).items())

        columnar_elapsed = _best_of(columnar_leg)
        sharded_elapsed = _best_of(sharded_leg)
        assert sharded.last_run["mode"] == "sharded"
        assert columnar_counts == sharded_counts  # bit-identical merge

    speedup = columnar_elapsed / sharded_elapsed if sharded_elapsed else 0.0
    _LINES.append(
        f"{scale:<8} {pair_rows:>10,} {kernel:>7} "
        f"{columnar_elapsed * 1e3:>8.1f}ms {sharded_elapsed * 1e3:>8.1f}ms "
        f"{speedup:>7.2f}x"
    )
    _flush_results()

    if scale == "large" and (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"sharded only {speedup:.2f}x over columnar at {scale} scale "
            f"with {WORKERS} workers on the {kernel} kernel "
            f"(acceptance bar is 2x on 4+ cores)"
        )


@pytest.mark.skipif(not numpy_available(), reason="needs the numpy kernel")
def test_compound_sharded_vectorized():
    """Sharded workers x vectorized kernel vs the single-core python
    columnar baseline: the two speedups compound."""
    index = _dense_index("large")
    state = ColumnarSubstrate().prepare(index)
    pair_rows = estimate_pair_rows(state)

    with use_kernel("python"):
        baseline = _best_of(lambda: ColumnarSubstrate.pair_counts(state))
    with use_kernel("numpy"):
        sharded = ShardedSubstrate(workers=WORKERS, min_pair_rows=0)
        sharded_state = sharded.prepare(index)
        compound = _best_of(lambda: sharded.pair_counts(sharded_state))
        assert sharded.last_run["mode"] == "sharded"

    speedup = baseline / compound if compound else 0.0
    _section(
        "compound leg (sharded x vectorized vs python columnar)",
        f"{'scale':<8} {'pair rows':>10} {'baseline':>10} {'compound':>10} "
        f"{'speedup':>8}",
    )
    _LINES.append(
        f"{'large':<8} {pair_rows:>10,} {baseline * 1e3:>8.1f}ms "
        f"{compound * 1e3:>8.1f}ms {speedup:>7.2f}x"
    )
    _flush_results()


def test_min_pair_rows_crossover_sweep():
    """Record the sharded/columnar ratio per scale on the best kernel —
    the measurement behind ``DEFAULT_MIN_PAIR_ROWS``.

    Vectorizing the columnar accumulate sped the fallback path up by
    roughly the kernel speedup while worker spin-up/IPC costs were
    unchanged, so the break-even pair-row count moved up by about the
    same factor: 200k (python-kernel era) -> 2M.  The sweep records
    where (or whether) sharding wins on *this* host so the committed
    table always carries the evidence for the shipped threshold.
    """
    best_kernel = "numpy" if numpy_available() else "python"
    _section(
        f"min_pair_rows crossover sweep ({best_kernel} kernel, "
        f"{WORKERS} workers)",
        f"{'scale':<8} {'pair rows':>10} {'columnar':>10} {'sharded':>10} "
        f"{'sharded wins':>12}",
    )
    crossover = None
    with use_kernel(best_kernel):
        for scale in SCALES:
            index = _dense_index(scale)
            state = ColumnarSubstrate().prepare(index)
            pair_rows = estimate_pair_rows(state)
            columnar_elapsed = _best_of(
                lambda: ColumnarSubstrate.pair_counts(state)
            )
            sharded = ShardedSubstrate(workers=WORKERS, min_pair_rows=0)
            sharded_state = sharded.prepare(index)
            sharded_elapsed = _best_of(
                lambda: sharded.pair_counts(sharded_state)
            )
            wins = sharded_elapsed < columnar_elapsed
            if wins and crossover is None:
                crossover = pair_rows
            _LINES.append(
                f"{scale:<8} {pair_rows:>10,} "
                f"{columnar_elapsed * 1e3:>8.1f}ms "
                f"{sharded_elapsed * 1e3:>8.1f}ms {'yes' if wins else 'no':>12}"
            )
    _LINES.append(
        f"crossover on this host: "
        + (f"~{crossover:,} pair rows" if crossover is not None
           else "not reached at these scales")
        + f"  (shipped DEFAULT_MIN_PAIR_ROWS={DEFAULT_MIN_PAIR_ROWS:,})"
    )
    _flush_results()
    # Keep the committed table and the shipped constant in sync: a
    # retune must re-run this bench.
    assert DEFAULT_MIN_PAIR_ROWS == 2_000_000


def test_fallback_leg_recorded():
    """Below the threshold the engine runs columnar; record that too."""
    index = _dense_index("small")
    engine = ShardedSubstrate(workers=WORKERS)  # stock threshold
    engine.select(index)
    mode = engine.last_run["mode"]
    assert mode == "fallback"
    _LINES.append("")
    _LINES.append(
        f"fallback check: small scale at stock threshold ran "
        f"'{mode}' (pair rows {engine.last_run['pair_rows']:,} < "
        f"{engine.min_pair_rows:,})"
    )
    _flush_results()
