"""Bench-wide fixtures: warm the shared universe once per session."""

import pytest

from benchmarks.common import get_universe


@pytest.fixture(scope="session", autouse=True)
def warm_universe():
    """Build the scenario before timing starts so universe construction
    doesn't pollute the first bench's measurement."""
    return get_universe()
