"""Figure 14 (and 29/30): same- vs different-organization pairs.

Expected shape: more than half of pairs originate from the same
organization (paper: 41k of 76k); unique IPv4 prefixes outnumber IPv6.
"""

from benchmarks.common import run_and_record


def test_fig14_org_counts(benchmark):
    result = run_and_record(benchmark, "fig14", every=8)
    assert result.key_values["same_org_share_end"] > 0.5
    assert (
        result.key_values["unique_v4_prefixes"]
        > result.key_values["unique_v6_prefixes"]
    )


def test_fig30_org_counts_routable(benchmark):
    result = run_and_record(
        benchmark, "fig14", tag="routable_fig30", every=12, case="routable"
    )
    assert result.key_values["same_org_share_end"] > 0.5
