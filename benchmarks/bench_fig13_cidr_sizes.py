"""Figure 13 (default), Figure 35 (/24-/48), Figure 36 (/28-/96):
CIDR-size distributions of sibling prefixes.

Expected shape: /24 x /48 modal in the default and routable cases
(paper: 23.41% and 92.73%); mass concentrated exactly on /28-/96 after
deep tuning (paper: 86.95%).
"""

from benchmarks.common import run_and_record


def test_fig13_cidr_sizes_default(benchmark):
    result = run_and_record(benchmark, "fig13", case="default")
    assert result.key_values["modal_is_24_48"] == 1.0


def test_fig35_cidr_sizes_routable(benchmark):
    result = run_and_record(benchmark, "fig13", tag="routable_fig35", case="routable")
    assert result.key_values["modal_is_24_48"] == 1.0
    assert result.key_values["modal_share_pct"] > 30.0


def test_fig36_cidr_sizes_tuned(benchmark):
    result = run_and_record(benchmark, "fig13", tag="tuned_fig36", case="deep")
    assert result.key_values["modal_is_24_48"] == 1.0  # modal == /28-/96 here
    assert result.key_values["modal_share_pct"] > 30.0
