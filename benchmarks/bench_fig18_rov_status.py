"""Figure 18: sibling-pair ROV status in RPKI over time.

Expected shape: the share of pairs with at least one VALID side grows
(paper: ~50% in 2020 to ~65% in 2024) while both-not-found shrinks
(~40% to ~20%).
"""

from benchmarks.common import run_and_record


def test_fig18_rov_status(benchmark):
    result = run_and_record(benchmark, "fig18", every=8)
    assert (
        result.key_values["at_least_one_valid_end_pct"]
        > result.key_values["at_least_one_valid_start_pct"]
    )
    assert result.key_values["both_notfound_end_pct"] < 50.0
