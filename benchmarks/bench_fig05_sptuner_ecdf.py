"""Figure 5: Jaccard ECDF, default vs SP-Tuner at both threshold pairs.

Expected shape: perfect-match share climbs from ~52% (default) through
~67% (/24-/48) to ~82% (/28-/96).
"""

from benchmarks.common import run_and_record


def test_fig05_sptuner_ecdf(benchmark):
    result = run_and_record(benchmark, "fig05")
    assert (
        result.key_values["default_perfect_share"]
        < result.key_values["routable_perfect_share"]
        < result.key_values["deep_perfect_share"]
    )
    assert 0.70 < result.key_values["deep_perfect_share"] < 0.95
