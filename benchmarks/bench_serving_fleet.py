"""Open-loop load test of the multi-process serving fleet.

Drives :class:`~repro.serving.fleet.ServingFleet` (1 then 2
``SO_REUSEPORT`` workers over one ``.sparch`` archive) with the
deterministic client-side generator in ``benchmarks/loadgen.py``, for
two traffic mixes:

* ``point`` — 100 % point lookups, the blocklist/geolocation consumer
  shape;
* ``mixed`` — 80 % point / 15 % batch / 5 % snapshot probes, the
  bulk-enrichment shape.

Each (mix, workers) configuration runs two legs: a **saturation** leg
(offered rate far above capacity, so ok/elapsed measures fleet
throughput) and a **paced** leg at a fixed moderate rate whose
open-loop latencies yield honest p50/p99/p999 (queueing charged to the
server, no coordinated omission).  Results land in
``results/serving_fleet.txt``.

The PR 6 acceptance bar — ≥ 1.6× q/s scaling from 1 to 2 workers on
the point mix — is asserted **only on hosts with 2+ cores**; a 1-core
container records the measured ratio with a skip note instead (the
``bench_parallel_detect.py`` convention).  Timing is
``time.perf_counter`` / wall-clock based, so the module still runs
once, untimed, under CI's ``--benchmark-disable`` smoke job.
"""

import os
import random
import re
import urllib.request

import pytest

from repro.analysis.pipeline import detect_at
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import format_address
from repro.serving.fleet import ServiceSource, ServingFleet
from repro.serving.index import SiblingLookupIndex
from repro.storage.index_io import append_index

from benchmarks.common import RESULTS_DIR, get_universe
from benchmarks.loadgen import (
    TrafficMix,
    generate_schedule,
    run_load,
    summarize,
)

MIXES = (
    TrafficMix("point", point=1.0, zipf_s=1.1),
    TrafficMix(
        "mixed", point=0.8, batch=0.15, snapshot=0.05,
        batch_size=16, zipf_s=1.1,
    ),
)

WORKER_COUNTS = (1, 2)
SCALING_BAR = 1.6

#: Saturation leg: offered rate far above any stdlib-server capacity.
SATURATION_REQUESTS = 2000
SATURATION_RATE = 1_000_000.0

#: Paced leg: fixed moderate offered load for honest percentiles.
PACED_REQUESTS = 1200
PACED_RATE = 1500.0

CONNECTIONS = 8
SEED = 20260808

_LINES: list[str] = []

#: (mix name, workers) → saturation-leg q/s, for the scaling check.
_QPS: dict[tuple[str, int], float] = {}


def _hit_biased_targets(
    index: SiblingLookupIndex, count: int = 200, seed: int = 7
) -> list[str]:
    """Popularity-rankable query targets: ~80 % hits, both families."""
    rng = random.Random(seed)
    stored = [
        prefix
        for pair in index.pairs
        for prefix in (pair.v4_prefix, pair.v6_prefix)
    ]
    targets = []
    for _ in range(count):
        if rng.random() < 0.8:
            base = rng.choice(stored)
            value = base.value | rng.getrandbits(base.host_bits)
            targets.append(format_address(base.version, value))
        else:
            version = rng.choice((4, 6))
            targets.append(
                format_address(
                    version, rng.getrandbits(32 if version == 4 else 128)
                )
            )
    return targets


@pytest.fixture(scope="module")
def fleet_archive(tmp_path_factory):
    """One archived small-scale detection + ranked query targets."""
    siblings, _ = detect_at(get_universe("small"), REFERENCE_DATE)
    index = SiblingLookupIndex.from_siblings(siblings)
    path = tmp_path_factory.mktemp("fleet-bench") / "fleet.sparch"
    append_index(path, index)
    return path, _hit_biased_targets(index)


def _merged_codes(*summaries: dict) -> dict:
    """Combine per-leg ``status_counts`` so every recorded line shows
    the full status-code breakdown (a silently-erroring leg can't hide
    behind healthy percentiles)."""
    merged: dict = {}
    for summary in summaries:
        for code, count in summary["status_counts"].items():
            merged[code] = merged.get(code, 0) + count
    return merged


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "multi-process serving fleet: open-loop load test",
        "=" * 48,
        "",
        f"host cores: {os.cpu_count()}  connections: {CONNECTIONS}  "
        f"(>= {SCALING_BAR}x 1->2 worker q/s scaling asserted only on "
        f"2+ core hosts)",
        "",
        "q/s from the saturation leg (offered >> capacity); p50/p99/p999 "
        f"open-loop latency from the paced leg at {PACED_RATE:,.0f} req/s.",
        "",
        f"{'mix':<7} {'workers':>7} {'requests':>8} {'errors':>6} "
        f"{'q/s':>9} {'q/s/core':>9} {'p50':>8} {'p99':>8} {'p999':>8} "
        f"codes",
    ]
    (RESULTS_DIR / "serving_fleet.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("mix", MIXES, ids=lambda mix: mix.name)
def test_fleet_load(mix, workers, fleet_archive):
    """Saturation + paced legs against a live fleet; results recorded."""
    path, targets = fleet_archive
    with ServingFleet(ServiceSource.archive(path), workers=workers) as fleet:
        fleet.start()
        saturation = run_load(
            fleet.url,
            generate_schedule(
                targets, SATURATION_REQUESTS, SATURATION_RATE, mix, SEED
            ),
            connections=CONNECTIONS,
        )
        paced = run_load(
            fleet.url,
            generate_schedule(
                targets, PACED_REQUESTS, PACED_RATE, mix, SEED + 1
            ),
            connections=CONNECTIONS,
        )
        # Cross-check the fleet's own telemetry against the client-side
        # ledger: the merged /v1/metrics lookup counter must equal the
        # number of point requests the generator actually sent.  Only
        # meaningful when nothing was retried (a transparent reconnect
        # may double-count server-side) and nothing was restarted.
        records = saturation.records + paced.records
        point_sent = sum(record.kind == "point" for record in records)
        anything_retried = any(record.retried for record in records)
        restarts = fleet.status()["restarts"]
        with urllib.request.urlopen(
            fleet.control_url + "/v1/metrics", timeout=30
        ) as response:
            metrics_text = response.read().decode("utf-8")
        match = re.search(
            r"^repro_serve_lookups_total (\d+)$", metrics_text, re.M
        )
        assert match, "fleet /v1/metrics lacks repro_serve_lookups_total"
        if not anything_retried and restarts == 0:
            assert int(match.group(1)) == point_sent, (
                f"fleet counted {match.group(1)} lookups but the "
                f"generator sent {point_sent} point requests"
            )
    throughput = summarize(saturation)
    latency = summarize(paced)
    assert throughput["errors"] == 0, saturation.errors()[:3]
    assert latency["errors"] == 0, paced.errors()[:3]

    qps = throughput["qps"]
    _QPS[(mix.name, workers)] = qps
    per_core = qps / min(workers, os.cpu_count() or 1)
    codes = " ".join(
        f"{code}:{count}"
        for code, count in sorted(_merged_codes(throughput, latency).items())
    )
    _LINES.append(
        f"{mix.name:<7} {workers:>7} {throughput['requests']:>8} "
        f"{throughput['errors']:>6} {qps:>9,.0f} {per_core:>9,.0f} "
        f"{latency['p50'] * 1e3:>6.2f}ms {latency['p99'] * 1e3:>6.2f}ms "
        f"{latency['p999'] * 1e3:>6.2f}ms {codes}"
    )
    _flush_results()


def test_fleet_scaling_recorded(fleet_archive):
    """The 1→2 worker q/s ratio, asserted only on multi-core hosts."""
    assert _QPS, "run test_fleet_load first (pytest runs this file in order)"
    cores = os.cpu_count() or 1
    _LINES.append("")
    for mix in MIXES:
        single = _QPS[(mix.name, 1)]
        double = _QPS[(mix.name, 2)]
        ratio = double / single if single else float("inf")
        if cores >= 2:
            _LINES.append(
                f"scaling: {mix.name} mix 1->2 workers {ratio:.2f}x "
                f"(bar {SCALING_BAR}x, asserted)"
            )
        else:
            _LINES.append(
                f"scaling: {mix.name} mix 1->2 workers {ratio:.2f}x "
                f"(1-core container: {SCALING_BAR}x bar not asserted, "
                f"matching the bench_parallel_detect convention)"
            )
    _flush_results()
    if cores >= 2:
        point_ratio = _QPS[("point", 2)] / _QPS[("point", 1)]
        assert point_ratio >= SCALING_BAR, (
            f"fleet q/s only scaled {point_ratio:.2f}x from 1 to 2 workers "
            f"on a {cores}-core host (acceptance bar is {SCALING_BAR}x)"
        )
