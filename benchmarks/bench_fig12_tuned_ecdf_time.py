"""Figure 12 (and 28): SP-Tuner Jaccard ECDF at ten points in time.

Expected shape: the tuned perfect-match share is roughly stable around
~80% (paper) at every snapshot — tuning works across time, not just on
the latest data.
"""

from benchmarks.common import run_and_record
from repro.core.sptuner import ROUTABLE_CONFIG


def test_fig12_tuned_ecdf_over_time(benchmark):
    result = run_and_record(benchmark, "fig12")
    for key, value in result.key_values.items():
        assert value > 0.6, f"{key} below the tuned band"


def test_fig28_routable_ecdf_over_time(benchmark):
    result = run_and_record(
        benchmark, "fig12", tag="routable_fig28", config=ROUTABLE_CONFIG
    )
    assert result.key_values["perfect_Day_0"] > 0.45
