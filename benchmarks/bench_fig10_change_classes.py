"""Figure 10 (default) and Figures 26/27: Jaccard by change class.

Expected shape: 'new' dominates (paper: 88%); unchanged pairs nearly all
perfect; changed pairs' current Jaccard lower than their old one.
"""

from benchmarks.common import run_and_record


def test_fig10_change_classes(benchmark):
    result = run_and_record(benchmark, "fig10")
    assert result.key_values["new_share"] > 0.4
    assert result.key_values["unchanged_perfect_share"] >= 0.9


def test_fig27_change_classes_tuned(benchmark):
    result = run_and_record(benchmark, "fig10", tag="tuned_fig27", tuned=True)
    assert result.key_values["new_share"] > 0.4
