"""Figures 16/20/21: business types of origin ASes.

Expected shape: IT x IT is the dominant cell in all three variants, and
most pairs involve IT on at least one side.
"""

from benchmarks.common import run_and_record
from repro.analysis.business import BusinessVariant


def test_fig16_pairs_excluding_same_asn(benchmark):
    result = run_and_record(benchmark, "fig16")
    assert result.key_values["dominant_is_it_it"] == 1.0


def test_fig20_unique_as_pairs(benchmark):
    result = run_and_record(
        benchmark, "fig16", tag="fig20", variant=BusinessVariant.UNIQUE_AS_PAIRS
    )
    assert result.key_values["it_involvement_share"] > 0.3


def test_fig21_unfiltered(benchmark):
    result = run_and_record(
        benchmark, "fig16", tag="fig21", variant=BusinessVariant.UNFILTERED
    )
    assert result.key_values["dominant_is_it_it"] == 1.0
