"""``repro watch`` churn replay: per-generation publish lag vs the SLO.

The watch daemon's promise is a latency one: once a snapshot file
lands, the time until the hot-swapped service answers from it (the
*publish lag*, ``watch.publish_lag_seconds``) must stay within the
per-generation budget — steady-state ingestion is delta-sized work,
not a full recompute per date.

This bench replays a churning snapshot series through the real
end-to-end loop — snapshot files written to a feed directory, a
:class:`~repro.analysis.watch.SnapshotWatcher` polling, delta
detection, the footer-commit archive append, and the service hot-swap
— one file per cycle, so every generation's lag is measured exactly
(file parse included).  The first date pays the full index build; the
SLO is asserted on the steady-state (delta) generations:

* max steady-state publish lag <= 2.0 s at the medium scale
  (the budget ``repro watch`` defaults to is 5 s per generation).

Each replayed generation is also cross-checked pair-identical to a
batch ``detect_series`` run, so the timing run doubles as an
equivalence check.  Results land in ``results/watch_replay.txt``.
"""

import datetime
import random
import time

import pytest

from repro.analysis.pipeline import detect_series
from repro.analysis.watch import SnapshotDirectorySource, SnapshotWatcher, write_snapshot_file
from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.obs.metrics import MetricsRegistry
from repro.serving.service import SiblingQueryService
from repro.storage import substrate_io
from repro.storage.archive import ArchiveReader

from benchmarks.common import RESULTS_DIR

#: (domains, memberships per family) per scale.
SCALES = {
    "small": (1_500, 3),
    "medium": (4_000, 6),
}

N_DATES = 8
CHURN = 0.08
POOL_SIZE = 64

#: The steady-state publish-lag SLO asserted at the medium scale.
SLO_SECONDS = 2.0

_LINES: list[str] = []

V4_POOL = [
    Prefix.from_address(IPV4, (20 << 24) | (i << 8), 24)
    for i in range(POOL_SIZE)
]
V6_POOL = [
    Prefix.from_address(IPV6, (0x2400_00DB << 96) | (i << 80), 48)
    for i in range(POOL_SIZE)
]


class _SeriesShim:
    """Pipeline-facing stand-in for a Universe (fixed routing)."""

    def __init__(self, snapshots):
        self._snapshots = {s.date: s for s in snapshots}
        self._annotator = _make_annotator()

    def snapshot_at(self, date):
        return self._snapshots[date]

    def annotator_at(self, date):
        return self._annotator


def _make_annotator() -> PrefixAnnotator:
    rib = Rib()
    for position, prefix in enumerate(V4_POOL + V6_POOL):
        rib.announce(prefix, 65000 + position)
    return PrefixAnnotator(rib, missing_fraction=0.0)


def _observation(rng, label, fan) -> DomainObservation:
    return DomainObservation(
        label,
        tuple(
            V4_POOL[pool].first_address + rng.randint(1, 250)
            for pool in rng.sample(range(POOL_SIZE), fan)
        ),
        tuple(
            V6_POOL[pool].first_address + rng.randint(1, 250)
            for pool in rng.sample(range(POOL_SIZE), fan)
        ),
    )


def _build_series(scale: str):
    n_domains, fan = SCALES[scale]
    rng = random.Random(20260808)
    table = {
        f"d{i}.watch": _observation(rng, f"d{i}.watch", fan)
        for i in range(n_domains)
    }
    next_label = n_domains
    dates = [
        datetime.date(2024, 9, 1) + datetime.timedelta(days=i)
        for i in range(N_DATES)
    ]
    snapshots = [DnsSnapshot(dates[0], table.values())]
    for date in dates[1:]:
        for position, label in enumerate(
            rng.sample(sorted(table), int(n_domains * CHURN))
        ):
            if position % 2 == 0:
                observation = table[label]
                table[label] = DomainObservation(
                    label,
                    tuple(
                        (a & ~0xFF) | rng.randint(1, 250)
                        for a in observation.v4_addresses
                    ),
                    tuple(
                        (a >> 80 << 80) | rng.randint(1, 250)
                        for a in observation.v6_addresses
                    ),
                )
            else:
                del table[label]
                fresh = f"d{next_label}.watch"
                next_label += 1
                table[fresh] = _observation(rng, fresh, fan)
        snapshots.append(DnsSnapshot(date, table.values()))
    return snapshots, dates


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "repro watch churn replay: per-generation publish lag",
        "=" * 52,
        "",
        f"{N_DATES} dates, {CHURN:.0%} domain churn per date; one snapshot",
        "file per cycle through the full poll/detect/append/swap loop",
        f"(SLO: steady-state max <= {SLO_SECONDS:.1f}s at medium scale)",
        "",
        f"{'scale':<8} {'domains':>8} {'build':>10} {'steady p50':>11} "
        f"{'steady max':>11}",
    ]
    (RESULTS_DIR / "watch_replay.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_watch_replay_publish_lag(scale, tmp_path):
    """Replay the series file-by-file; lag per generation vs the SLO."""
    snapshots, dates = _build_series(scale)
    feed = tmp_path / "feed"
    feed.mkdir()
    archive = tmp_path / "watch.sparch"
    annotator = _make_annotator()
    service = SiblingQueryService()
    watcher = SnapshotWatcher(
        SnapshotDirectorySource(feed),
        lambda date: annotator,
        archive,
        service=service,
        budget_seconds=SLO_SECONDS,
        registry=MetricsRegistry(),
    )

    lags = []
    for snapshot in snapshots:
        write_snapshot_file(snapshot, feed)
        appended = watcher.run(once=True)
        assert appended == 1, f"{snapshot.date}: expected one generation"
        lags.append(watcher.status()["publish_lag_seconds"])
    assert service.index.snapshot == dates[-1]

    # Equivalence: every archived generation matches a batch run.
    expected = detect_series(_SeriesShim(snapshots), dates, incremental=True)
    with ArchiveReader.open(archive) as reader:
        pool_names = reader.pool_names()
        by_date = reader.generations_by_date(substrate_io.SIBLINGS_KIND)
        assert sorted(by_date) == [date.isoformat() for date in dates]
        for date, siblings in expected:
            archived = substrate_io.load_siblings(
                by_date[date.isoformat()], pool_names
            )
            assert archived.same_pairs(siblings), f"{date}: replay diverged"

    build, steady = lags[0], sorted(lags[1:])
    p50 = steady[len(steady) // 2]
    n_domains, _ = SCALES[scale]
    _LINES.append(
        f"{scale:<8} {n_domains:>8} {build * 1e3:>8.0f}ms "
        f"{p50 * 1e3:>9.1f}ms {steady[-1] * 1e3:>9.1f}ms"
    )
    _flush_results()

    if scale == "medium":
        assert steady[-1] <= SLO_SECONDS, (
            f"steady-state publish lag {steady[-1]:.2f}s exceeds the "
            f"{SLO_SECONDS:.1f}s SLO at {scale} scale"
        )
