"""Section 3.5: vantage-point ground truth evaluation.

Expected shape: coverage split near the paper's 42.5/32.1/25.3 and a
high best-match share among fully covered points (paper: 89.36%).
"""

from benchmarks.common import run_and_record


def test_sec35_groundtruth(benchmark):
    result = run_and_record(benchmark, "sec35")
    assert 0.25 < result.key_values["fully_covered_share"] < 0.65
    assert result.key_values["best_match_share"] > 0.6
