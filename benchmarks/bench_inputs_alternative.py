"""Section 6: the methodology on alternative inputs (MX, rDNS).

Expected shape: both signals detect siblings and largely confirm the
domain-based pairs, supporting the paper's generalization claim.
"""

from benchmarks.common import run_and_record


def test_inputs_alternative(benchmark):
    result = run_and_record(benchmark, "inputs")
    assert result.key_values["mx_pairs"] > 0
    assert result.key_values["rdns_pairs"] > 0
    assert result.key_values["mx_compatibility"] > 0.4
    assert result.key_values["rdns_compatibility"] > 0.5
