"""Figure 22: SP-Tuner-LS (less specific) — the negative result.

Expected shape: widening prefixes does not improve Jaccard, with or
without the level threshold.
"""

from benchmarks.common import run_and_record


def test_fig22_sptuner_ls(benchmark):
    result = run_and_record(benchmark, "fig22")
    assert abs(
        result.key_values["bounded_mean"] - result.key_values["default_mean"]
    ) < 0.02
    assert result.key_values["unbounded_mean"] <= (
        result.key_values["default_mean"] + 0.02
    )
