"""Serving lookup throughput: compiled index vs linear-scan baseline.

Measures point and batch query throughput of the compiled
:class:`SiblingLookupIndex` against :func:`scan_lookup` — the O(pairs)
per-query brute force the CLI ``lookup`` effectively was before the
serving subsystem — at three universe scales, plus the one-off compile
and binary save/load costs.  Results land in ``results/serving.txt``.

Timing is done with ``time.perf_counter`` loops rather than
pytest-benchmark rounds because each test reports a *ratio* between
two measured legs; the module still runs (once, untimed) under
``--benchmark-disable`` in the CI smoke job.

The PR 2 acceptance bar — compiled index ≥ 20× the linear scan at the
largest bench scale — is asserted here and recorded in the results
file.
"""

import pathlib
import random
import time

import pytest

from repro.analysis.pipeline import detect_at
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import format_address
from repro.serving.codec import dump_bytes, load_bytes
from repro.serving.index import SiblingLookupIndex, scan_lookup

from benchmarks.common import RESULTS_DIR, get_universe

SCALES = ("tiny", "small", "medium")

#: Per-scale measurement lines, accumulated across the parametrized runs.
_LINES: list[str] = []

_PAIR_CACHE: dict[str, SiblingLookupIndex] = {}


def _index_for(scale: str) -> SiblingLookupIndex:
    """Session-cached compiled index for one scenario scale."""
    index = _PAIR_CACHE.get(scale)
    if index is None:
        siblings, _ = detect_at(get_universe(scale), REFERENCE_DATE)
        index = SiblingLookupIndex.from_siblings(siblings)
        _PAIR_CACHE[scale] = index
    return index


def _queries(index: SiblingLookupIndex, count: int, seed: int = 7) -> list[str]:
    """Hit-biased query strings (addresses, both families, some misses)."""
    rng = random.Random(seed)
    stored = [
        prefix
        for pair in index.pairs
        for prefix in (pair.v4_prefix, pair.v6_prefix)
    ]
    queries = []
    for _ in range(count):
        if rng.random() < 0.7:
            base = rng.choice(stored)
            value = base.value | rng.getrandbits(base.host_bits)
            queries.append(format_address(base.version, value))
        else:
            version = rng.choice((4, 6))
            value = rng.getrandbits(32 if version == 4 else 128)
            queries.append(format_address(version, value))
    return queries


def _rate(elapsed: float, count: int) -> str:
    return f"{count / elapsed:>12,.0f} q/s" if elapsed else f"{'inf':>12} q/s"


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "serving lookup throughput: compiled index vs linear scan",
        "=" * 56,
        "",
        f"{'scale':<8} {'pairs':>6} {'leg':<14} {'per-query':>12} "
        f"{'throughput':>16} {'speedup':>9}",
    ]
    (RESULTS_DIR / "serving.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


@pytest.mark.parametrize("scale", SCALES)
def test_serving_lookup_throughput(scale):
    """Point + batch lookups on the index vs brute-force linear scan."""
    index = _index_for(scale)
    point_queries = _queries(index, 3000)
    scan_queries = point_queries[:200]

    # Warm parse/format caches identically for both legs.
    for query in point_queries[:50]:
        index.lookup(query)
        scan_lookup(index.pairs, query)

    start = time.perf_counter()
    point_hits = sum(
        1 for query in point_queries if index.lookup(query) is not None
    )
    point_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    batch_results = index.batch(point_queries)
    batch_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    scan_hits = sum(
        1 for query in scan_queries if scan_lookup(index.pairs, query) is not None
    )
    scan_elapsed = time.perf_counter() - start

    point_per_query = point_elapsed / len(point_queries)
    scan_per_query = scan_elapsed / len(scan_queries)
    speedup = scan_per_query / point_per_query if point_per_query else float("inf")

    # Equivalence spot-check while we are here: same hit decisions.
    assert point_hits == sum(
        1 for result in batch_results if result is not None
    )
    assert scan_hits == sum(
        1 for query in scan_queries if index.lookup(query) is not None
    )

    _LINES.append(
        f"{scale:<8} {len(index):>6} {'index point':<14} "
        f"{point_per_query * 1e6:>10.2f}us {_rate(point_elapsed, len(point_queries)):>16} "
        f"{speedup:>8.1f}x"
    )
    _LINES.append(
        f"{scale:<8} {len(index):>6} {'index batch':<14} "
        f"{batch_elapsed / len(point_queries) * 1e6:>10.2f}us "
        f"{_rate(batch_elapsed, len(point_queries)):>16} {'':>9}"
    )
    _LINES.append(
        f"{scale:<8} {len(index):>6} {'linear scan':<14} "
        f"{scan_per_query * 1e6:>10.2f}us {_rate(scan_elapsed, len(scan_queries)):>16} "
        f"{'1.0x':>9}"
    )
    _flush_results()

    if scale == SCALES[-1]:
        assert speedup >= 20, (
            f"compiled index only {speedup:.1f}x over linear scan at "
            f"{scale} scale (PR 2 acceptance bar is 20x)"
        )


def test_serving_compile_and_codec_cost():
    """One-off costs: compile from a SiblingSet, binary dump and load."""
    siblings, _ = detect_at(get_universe("medium"), REFERENCE_DATE)

    start = time.perf_counter()
    index = SiblingLookupIndex.from_siblings(siblings)
    compile_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    blob = dump_bytes(index)
    dump_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    loaded = load_bytes(blob)
    load_elapsed = time.perf_counter() - start
    assert loaded.pairs == index.pairs

    _LINES.append("")
    _LINES.append(
        f"medium one-off: compile {compile_elapsed * 1e3:.1f}ms, "
        f"dump {dump_elapsed * 1e3:.1f}ms ({len(blob):,} bytes), "
        f"load {load_elapsed * 1e3:.1f}ms ({len(index)} pairs)"
    )
    _flush_results()
