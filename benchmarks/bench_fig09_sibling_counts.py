"""Figure 9: number of sibling prefixes over four years.

Expected shape: roughly doubles from Year -4 to Day 0 (paper: 36k→76k).
"""

from benchmarks.common import run_and_record


def test_fig09_sibling_counts(benchmark):
    result = run_and_record(benchmark, "fig09")
    assert result.key_values["growth_factor"] > 1.5
