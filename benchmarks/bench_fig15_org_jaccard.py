"""Figure 15 (and 31/32): median Jaccard by organization split.

Expected shape: different-org median pinned at 1.0 by the monitoring
(site24x7-like) cross-product pairs; same-org median high.
"""

from benchmarks.common import run_and_record


def test_fig15_org_jaccard(benchmark):
    result = run_and_record(benchmark, "fig15", every=8)
    assert result.key_values["diff_org_median_end"] == 1.0
    assert result.key_values["same_org_median_end"] > 0.6


def test_fig32_org_jaccard_routable(benchmark):
    result = run_and_record(
        benchmark, "fig15", tag="routable_fig32", every=12, case="routable"
    )
    assert result.key_values["diff_org_median_end"] == 1.0
