"""The scripted event grid at scale: wall-time + exact quality scores.

Drives every scripted event scenario
(:data:`repro.synth.events.EVENT_SCENARIOS`) through the incremental
pipeline at three deployment-cast scales — 1×, 10×, and 100× the script
default (24 → 2,400 deployments, i.e. 10–100× the tier-1 test scale) —
and records per-run wall time plus the exact precision/recall/F1
against the generator's ground-truth ledger into
``results/scenario_grid.txt``.

Two legs:

* ``test_scenario_grid_floors`` — the 1× grid with the same quality
  floors as ``tests/test_scenario_quality.py`` (the authoritative
  gate); runs in the blocking CI ``scenario-quality`` job via
  ``-k floors``.
* ``test_scenario_grid_scale`` — the 10×/100× scale sweep; rides in
  the non-blocking bench-smoke job and whenever the bench directory is
  run directly.
"""

import time

import pytest

from repro.analysis.pipeline import detect_series
from repro.analysis.quality import score_series
from repro.synth.events import EVENT_SCENARIOS, build_event_universe
from repro.synth.scenarios import scenario
from repro.synth.topology import build_population

from benchmarks.common import RESULTS_DIR

SCALES = (1, 10, 100)

#: Mirrors tests/test_scenario_quality.py (the blocking gate is there);
#: scenario → (precision floor, recall floor, non-trap precision floor).
FLOORS = {
    "rollout": (0.95, 0.95, 0.99),
    "renumber": (0.99, 0.99, 0.99),
    "rotation": (0.99, 0.95, 0.99),
    "aliased": (0.85, 0.99, 0.99),
    "orgchurn": (0.99, 0.99, 0.99),
    "mixed": (0.90, 0.95, 0.99),
}

#: One org population shared across the grid — engines only read org
#: ids/ASNs from it and allocate addresses from private plans.
_POPULATION = build_population(scenario("tiny"))

_LINES: dict[tuple[int, str], str] = {}


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "scripted event scenario grid",
        "=" * 28,
        "",
        "incremental detect-series over every event script, scored",
        "exactly against the generator's ground-truth ledger",
        "(floors enforced by tests/test_scenario_quality.py and the",
        "1x leg below; 10x/100x legs are the scale sweep)",
        "",
        f"{'scale':>5} {'scenario':<10} {'deploys':>8} {'dates':>6} "
        f"{'wall':>9} {'prec':>7} {'recall':>7} {'f1':>7} {'traps':>6}",
    ]
    lines = [_LINES[key] for key in sorted(_LINES)]
    (RESULTS_DIR / "scenario_grid.txt").write_text(
        "\n".join(header + lines) + "\n"
    )


def _run(name: str, scale: int):
    universe = build_event_universe(name, base=_POPULATION, scale=scale)
    start = time.perf_counter()
    results = detect_series(universe, universe.dates, incremental=True)
    elapsed = time.perf_counter() - start
    score = score_series(results, universe.ledger, scenario=name)
    script = universe.script
    _LINES[(scale, name)] = (
        f"{scale:>4}x {name:<10} {script.n_deployments:>8,} "
        f"{script.n_dates:>6} {elapsed * 1e3:>7.0f}ms "
        f"{score.precision:>7.3f} {score.recall:>7.3f} {score.f1:>7.3f} "
        f"{score.trap_positives:>6}"
    )
    _flush_results()
    return score


@pytest.mark.parametrize("name", sorted(EVENT_SCENARIOS))
def test_scenario_grid_floors(name):
    """The blocking 1× leg: every scenario meets its quality floors."""
    precision_floor, recall_floor, non_trap_floor = FLOORS[name]
    score = _run(name, 1)
    assert score.precision >= precision_floor
    assert score.recall >= recall_floor
    assert score.non_trap_precision >= non_trap_floor
    assert score.churn.unreflected == 0


@pytest.mark.parametrize("scale", [s for s in SCALES if s > 1])
@pytest.mark.parametrize("name", sorted(EVENT_SCENARIOS))
def test_scenario_grid_scale(name, scale):
    """The 10×/100× sweep: quality must not decay with cast size."""
    precision_floor, recall_floor, non_trap_floor = FLOORS[name]
    score = _run(name, scale)
    assert score.precision >= precision_floor
    assert score.recall >= recall_floor
    assert score.non_trap_precision >= non_trap_floor


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
