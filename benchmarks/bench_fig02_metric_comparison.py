"""Figure 2: Jaccard vs Dice vs overlap coefficient ECDFs.

Expected shape: the overlap coefficient saturates (>90% of pairs at 1.0,
the paper's reason for rejecting it); Jaccard and Dice track each other
with Dice slightly more lenient.
"""

from benchmarks.common import run_and_record


def test_fig02_metric_comparison(benchmark):
    result = run_and_record(benchmark, "fig02")
    assert result.key_values["overlap_share_at_1"] > 0.85
    assert (
        result.key_values["overlap_share_at_1"]
        > result.key_values["dice_share_at_1"]
    )
