"""Serve cold-start: archive mmap attach vs codec load-and-compile.

Before the snapshot archive, starting ``repro serve`` meant reading the
whole ``.sibidx`` file, materializing every :class:`PublishedPair`, and
recompiling the lookup index (sort + group + pack).  The archive path
(``repro serve --archive``) attaches to the newest generation via
``mmap``: one footer + manifest parse, zero pair objects, zero
recompilation — keys, postings, and records serve from the page cache
and pairs materialize per answer.

Each timed leg builds a ready-to-answer :class:`SiblingQueryService`
*and* answers a first query (so the archive leg pays its lazy segment
CRC validation inside the measurement), at three universe scales.
Both legs must return identical answers; the PR 5 acceptance bar —
archive cold-start ≥ 20× the codec path at the largest (medium) scale
— is asserted here and recorded in ``results/archive_coldstart.txt``.

Timing is ``time.perf_counter`` best-of loops (the tests report a
ratio between two legs); the module still runs once, untimed, under
``--benchmark-disable`` in the CI smoke job.
"""

import datetime
import time

import pytest

from repro.analysis.pipeline import detect_at
from repro.dates import REFERENCE_DATE
from repro import publish
from repro.serving.codec import save_index
from repro.serving.index import SiblingLookupIndex
from repro.serving.service import SiblingQueryService

from benchmarks.common import RESULTS_DIR, get_universe

SCALES = ("tiny", "small", "medium")
ROUNDS = 7

_LINES: list[str] = []

_INDEXES: dict[str, SiblingLookupIndex] = {}


def _index_for(scale: str) -> SiblingLookupIndex:
    """Session-cached compiled index for one scenario scale."""
    index = _INDEXES.get(scale)
    if index is None:
        siblings, _ = detect_at(get_universe(scale), REFERENCE_DATE)
        index = SiblingLookupIndex.from_siblings(siblings)
        _INDEXES[scale] = index
    return index


def _best_of(func, rounds: int = ROUNDS) -> tuple[float, object]:
    """(best elapsed seconds, last result) over *rounds* calls."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _flush_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    header = [
        "serve cold-start: archive mmap attach vs codec load+compile",
        "=" * 59,
        "",
        "each leg = build a ready SiblingQueryService + answer 1 query",
        "",
        f"{'scale':<8} {'pairs':>6} {'codec':>12} {'archive':>12} "
        f"{'speedup':>9}",
    ]
    (RESULTS_DIR / "archive_coldstart.txt").write_text(
        "\n".join(header + _LINES) + "\n"
    )


@pytest.mark.parametrize("scale", SCALES)
def test_archive_coldstart_speedup(scale, tmp_path):
    """Cold-start a service from .sibidx vs .sparch; identical answers."""
    index = _index_for(scale)
    date = datetime.date(2024, 9, 11)
    sibidx = tmp_path / f"{scale}.sibidx"
    sparch = tmp_path / f"{scale}.sparch"
    save_index(index, sibidx)
    publish.write_archive(index.pairs, sparch, date)

    probe = str(index.pairs[len(index) // 2].v4_prefix)

    def codec_leg():
        service = SiblingQueryService.from_file(sibidx)
        return service.lookup(probe)

    def archive_leg():
        service = SiblingQueryService.from_archive(sparch)
        answer = service.lookup(probe)
        service.index.close()
        return answer

    codec_elapsed, codec_answer = _best_of(codec_leg)
    archive_elapsed, archive_answer = _best_of(archive_leg)
    assert codec_answer == archive_answer, "legs disagree on the probe query"

    speedup = codec_elapsed / archive_elapsed if archive_elapsed else float("inf")
    _LINES.append(
        f"{scale:<8} {len(index):>6} {codec_elapsed * 1e3:>10.2f}ms "
        f"{archive_elapsed * 1e3:>10.3f}ms {speedup:>8.1f}x"
    )
    _flush_results()

    if scale == SCALES[-1]:
        assert speedup >= 20, (
            f"archive cold-start only {speedup:.1f}x over codec "
            f"load+compile at {scale} scale (PR 5 acceptance bar is 20x)"
        )


def test_archive_coldstart_answers_match_in_memory(tmp_path):
    """Sanity inside the bench: the mapped service answers like the
    in-memory index it was built from, over a spread of queries."""
    index = _index_for("small")
    sparch = tmp_path / "check.sparch"
    publish.write_archive(index.pairs, sparch, datetime.date(2024, 9, 11))
    service = SiblingQueryService.from_archive(sparch)
    memory = SiblingQueryService(index)
    for pair in index.pairs[:: max(1, len(index) // 50)]:
        for prefix in (pair.v4_prefix, pair.v6_prefix):
            assert service.lookup(str(prefix)) == memory.lookup(str(prefix))
    service.index.close()
    _LINES.append("")
    _LINES.append(
        f"answer-equivalence spot check: ok over ~100 queries (small)"
    )
    _flush_results()
