"""Figure 1: domains and dual-stack domains in the DNS dataset over time.

Expected shape: total domains grow across the window (toplist additions,
notably the .fr ccTLD in 2022-08), DS share rises from ~25% toward ~32%.
"""

from benchmarks.common import run_and_record


def test_fig01_dataset_evolution(benchmark):
    result = run_and_record(benchmark, "fig01", every=4)
    assert result.key_values["total_domains_end"] > result.key_values[
        "total_domains_start"
    ]
    assert result.key_values["ds_share_end_pct"] > result.key_values[
        "ds_share_start_pct"
    ]
