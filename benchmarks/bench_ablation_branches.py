"""Ablation: SP-Tuner's UpdateBranches step (Algorithm 1, line 12).

Expected shape: disabling branch tracking loses domains from the tuned
sibling set — the exact failure mode the paper's branch tracking exists
to prevent.
"""

from benchmarks.common import run_and_record


def test_ablation_branches(benchmark):
    result = run_and_record(benchmark, "ablation_branches")
    assert result.key_values["domains_lost_without_branches"] >= 0.0
    assert result.key_values["pairs_with"] >= result.key_values["pairs_without"]
