"""Per-figure benchmark harness.

Every table and figure in the paper's evaluation has a bench module here
(``bench_figNN_*.py``) that regenerates its data on a synthetic scenario
and prints the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Scenario scale defaults to ``small``; set ``REPRO_SCALE=medium`` for more
statistics (slower).  Rendered tables are also written to
``benchmarks/results/<experiment>.txt``.
"""
