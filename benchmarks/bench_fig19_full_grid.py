"""Figure 19: the extended SP-Tuner threshold grid (appendix A.2).

Expected shape: same monotone structure as Figure 4 over a wider
threshold range, with the mean saturating near the deepest thresholds.
"""

from benchmarks.common import run_and_record

V4 = tuple(range(16, 32, 2))
V6 = tuple(range(32, 128, 12))


def test_fig19_full_grid(benchmark):
    result = run_and_record(
        benchmark, "fig04", tag="full_fig19", v4_thresholds=V4, v6_thresholds=V6
    )
    assert result.key_values["mean_at_tightest"] > result.key_values[
        "mean_at_loosest"
    ]
