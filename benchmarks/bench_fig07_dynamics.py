"""Figure 7: DS-domain visibility and prefix/address stability.

Expected shape: a large consistent population (paper: ~40% visible in
all 13 snapshots, ~20% once); >91% same prefix over a year; prefixes
more stable than addresses (83% same address).
"""

from benchmarks.common import run_and_record


def test_fig07_dynamics(benchmark):
    result = run_and_record(benchmark, "fig07")
    assert 0.15 < result.key_values["consistent_share"] < 0.75
    assert result.key_values["same_prefix_year_pct"] > 70.0
    assert (
        result.key_values["same_prefix_year_pct"]
        >= result.key_values["same_address_year_pct"]
    )
