"""Sibling-pair stability (the abstract's 'relatively stable over time').

Expected shape: pairs from recent snapshots overwhelmingly survive into
the reference set; survival decays smoothly with lookback distance.
"""

from repro.analysis.pipeline import paper_offsets
from repro.analysis.stability import pair_survival, survival_timeseries
from repro.dates import REFERENCE_DATE
from repro.reporting.experiments import ExperimentResult
from repro.reporting.tables import format_timeseries

from benchmarks.common import get_universe, record


def test_pair_survival(benchmark):
    universe = get_universe()
    offsets = dict(paper_offsets(REFERENCE_DATE))
    dates = [
        offsets[label]
        for label in ("Year -4", "Year -2", "Year -1", "Month -6", "Month -1", "Week -1")
    ]

    points = benchmark.pedantic(
        pair_survival, args=(universe, dates, REFERENCE_DATE), rounds=1, iterations=1
    )
    series = survival_timeseries(points)
    result = ExperimentResult(
        "stability",
        "Sibling pair survival into the reference snapshot",
        format_timeseries(series),
        {
            "survival_week_minus_1": points[-1].survival_share,
            "survival_year_minus_4": points[0].survival_share,
        },
    )
    record(result)
    assert points[-1].survival_share > 0.85
    assert points[-1].survival_share >= points[0].survival_share - 0.05
