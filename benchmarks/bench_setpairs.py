"""Future work (Section 6): sibling prefix set pairs.

Expected shape: grouping pairs into prefix-set components never reduces
similarity and repairs fragmented deployments the single-pair view
scores poorly.
"""

from benchmarks.common import run_and_record


def test_setpairs(benchmark):
    result = run_and_record(benchmark, "setpairs")
    assert result.key_values["set_mean"] >= result.key_values["pair_mean"]
    assert (
        result.key_values["set_perfect_share"]
        >= result.key_values["pair_perfect_share"]
    )
    assert result.key_values["fragmented_count"] > 0
