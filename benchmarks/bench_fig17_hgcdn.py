"""Figures 17/25 (deep), 23 (default), 24 (/24-/48): HG/CDN similarity.

Expected shape: aligned hypergiants (Google/Facebook style) concentrate
in the 0.9-1.0 column; agility CDNs (Cloudflare/Akamai) carry large
low-similarity mass; non-CDN-HG mostly high.
"""

from benchmarks.common import run_and_record


def test_fig17_hgcdn(benchmark):
    result = run_and_record(benchmark, "fig17", min_pairs=5)
    assert result.key_values["hgcdn_orgs_with_pairs"] >= 5
    assert result.key_values["non_cdn_hg_high_share"] > 0.5
    if "cloudflare_high_share" in result.key_values:
        assert (
            result.key_values["cloudflare_high_share"]
            < result.key_values["non_cdn_hg_high_share"]
        )


def test_fig23_hgcdn_default(benchmark):
    result = run_and_record(
        benchmark, "fig17", tag="default_fig23", min_pairs=5, case="default"
    )
    assert result.key_values["hgcdn_orgs_with_pairs"] >= 5


def test_fig24_hgcdn_routable(benchmark):
    result = run_and_record(
        benchmark, "fig17", tag="routable_fig24", min_pairs=5, case="routable"
    )
    assert result.key_values["hgcdn_orgs_with_pairs"] >= 5
