"""Telemetry instrumentation overhead on the Step-3 hot path.

The tracing layer promises that spans live at *stage* granularity (two
clock reads on entry, two on exit, one histogram observe) and never
inside per-item loops, so ``detect`` with telemetry on must cost within
3% of telemetry off.  This bench drives the columnar engine's Step 3+4
``select`` over a dense synthetic membership index (the
``bench_parallel_detect.py`` medium shape, ~512k pair rows) with spans
**enabled** vs **disabled** (:func:`repro.obs.tracing.set_enabled`),
alternating legs best-of-N so clock drift hits both equally.

The <3% bar is asserted **only on hosts with 2+ cores** — on a shared
1-core container scheduler noise swamps a single-digit-percent signal,
so the measured ratio is recorded with a skip note instead (the
``bench_parallel_detect.py`` convention).  Results land in
``results/obs_overhead.txt``, labeled with the kernel that ran the
traced region: the vectorized kernel shrinks the select itself ~5x,
so the same fixed span cost reads as a larger *ratio* on a numpy host
even though the absolute overhead is unchanged — the blocking CI
guard runs the python kernel (its job installs no numpy), which is
the contract the bar was calibrated against.  The module still runs
once, untimed, under CI's ``--benchmark-disable`` smoke job.
"""

import os
import random
import time

from repro.core.domainsets import PrefixDomainIndex
from repro.core.kernels import kernel_name
from repro.core.substrate import ColumnarSubstrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import set_enabled, set_registry

from benchmarks.common import RESULTS_DIR

#: Dense index shape: domains x v4 fan x v6 fan (~512k pair rows).
N_DOMAINS, FAN_V4, FAN_V6 = 8_000, 8, 8

REPEATS = 5
OVERHEAD_BAR = 1.03


def _dense_index() -> PrefixDomainIndex:
    rng = random.Random(20260808)
    v4_pool = [
        Prefix.from_address(IPV4, (10 << 24) | (i << 8), 24)
        for i in range(256)
    ]
    v6_pool = [
        Prefix.from_address(IPV6, (0x2001_0DB8 << 96) | (i << 80), 48)
        for i in range(256)
    ]
    index = PrefixDomainIndex(date=REFERENCE_DATE)
    for position in range(N_DOMAINS):
        label = f"d{position}.bench"
        v4_prefixes = set(rng.sample(v4_pool, FAN_V4))
        v6_prefixes = set(rng.sample(v6_pool, FAN_V6))
        index.domain_v4_prefixes[label] = v4_prefixes
        index.domain_v6_prefixes[label] = v6_prefixes
        for prefix in v4_prefixes:
            index.v4_domains.setdefault(prefix, set()).add(label)
        for prefix in v6_prefixes:
            index.v6_domains.setdefault(prefix, set()).add(label)
    return index


def test_instrumentation_overhead_under_bar():
    """Traced vs untraced Step 3+4 select; <3% asserted on 2+ cores."""
    index = _dense_index()
    engine = ColumnarSubstrate()
    previous_registry = set_registry(MetricsRegistry())
    previous_enabled = set_enabled(True)
    try:
        baseline = engine.select(index)  # warm the prepared-state cache
        traced_best = untraced_best = float("inf")
        for _ in range(REPEATS):
            set_enabled(True)
            start = time.perf_counter()
            traced_result = engine.select(index)
            traced_best = min(traced_best, time.perf_counter() - start)

            set_enabled(False)
            start = time.perf_counter()
            untraced_result = engine.select(index)
            untraced_best = min(untraced_best, time.perf_counter() - start)
            assert len(traced_result) == len(untraced_result) == len(baseline)
    finally:
        set_enabled(previous_enabled)
        set_registry(previous_registry)

    cores = os.cpu_count() or 1
    ratio = traced_best / untraced_best if untraced_best else float("inf")
    # The bar was calibrated against the python-kernel select (the
    # blocking CI guard's configuration); on the ~5x-shorter vectorized
    # select the same span cost is a larger ratio, so it is recorded,
    # not asserted.
    asserted = cores >= 2 and kernel_name() == "python"
    lines = [
        "telemetry instrumentation overhead: Step 3+4 select",
        "=" * 51,
        "",
        f"host cores: {cores}  repeats: {REPEATS} (alternating best-of-N)  "
        f"pair shape: {N_DOMAINS} domains x {FAN_V4}x{FAN_V6} fan  "
        f"kernel: {kernel_name()}",
        "",
        f"untraced  {untraced_best * 1e3:>9.1f}ms",
        f"traced    {traced_best * 1e3:>9.1f}ms",
        f"overhead  {(ratio - 1.0) * 100:>+9.2f}%  (bar < "
        f"{(OVERHEAD_BAR - 1.0) * 100:.0f}%, "
        + (
            "asserted)"
            if asserted
            else "recorded, not asserted — 1-core host or vectorized "
            "kernel, see module docstring)"
        ),
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.txt").write_text("\n".join(lines) + "\n")

    if asserted:
        assert ratio < OVERHEAD_BAR, (
            f"stage tracing cost {(ratio - 1.0) * 100:.2f}% on the Step-3 "
            f"hot path (budget is {(OVERHEAD_BAR - 1.0) * 100:.0f}%)"
        )
