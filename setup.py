"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` cannot take the PEP 660 path; this shim lets pip fall
back to ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
